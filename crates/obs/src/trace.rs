//! Phase tracing: a [`SpanSink`] that records thread-tagged phase spans
//! and exports them as JSONL and as Chrome `trace_event` JSON (loadable
//! in `chrome://tracing` or Perfetto).
//!
//! The engine marks phases (`lower`, `run`, `sweep`, `fault-campaign`,
//! `report`) through the [`SpanSink`](morello_sim::SpanSink) trait; this
//! module provides the concrete recorder. Worker threads are mapped to
//! small consecutive track ids in order of first appearance, so a
//! `--jobs 4` sweep renders as four parallel tracks of `lower`/`run`
//! spans under one `sweep` span.
//!
//! Span timestamps are host wall-clock microseconds from the tracer's
//! creation. They are observability output, never part of a
//! deterministic artefact (the golden reports and `BENCH_interp.json`
//! model sections exclude host timing by construction).

use morello_sim::SpanSink;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanRecord {
    /// What ran (e.g. `"run lbm_519 purecap"`).
    pub name: String,
    /// The phase category (`"lower"`, `"run"`, `"sweep"`, …).
    pub cat: String,
    /// Small consecutive track id of the recording thread.
    pub tid: u64,
    /// Start, in microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    cat: String,
    tid: u64,
    start_us: u64,
}

#[derive(Debug, Default)]
struct TracerState {
    next_token: u64,
    threads: HashMap<ThreadId, u64>,
    open: HashMap<u64, OpenSpan>,
    done: Vec<SpanRecord>,
}

/// The span recorder. Shared by reference across the engine's worker
/// threads (all methods take `&self`); the contention is one short
/// mutex acquisition per span boundary, invisible next to the millions
/// of simulated instructions inside each span.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    state: Mutex<TracerState>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer whose clock starts now.
    pub fn new() -> Tracer {
        Tracer {
            epoch: Instant::now(),
            state: Mutex::new(TracerState::default()),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Completed spans so far, ordered by start time (ties by track id)
    /// so exports are stable for a given set of recorded spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = state.done.clone();
        out.sort_by_key(|a| (a.start_us, a.tid, a.dur_us));
        out
    }

    /// Spans begun but not yet ended (should be zero at export time).
    pub fn open_spans(&self) -> usize {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.open.len()
    }

    /// Writes one JSON object per completed span.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_jsonl(&self, w: &mut impl Write) -> std::io::Result<()> {
        for span in self.spans() {
            let line = serde_json::to_string(&span)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Writes the Chrome `trace_event` JSON form: complete (`ph: "X"`)
    /// duration events under `traceEvents`, one track per worker
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_chrome(&self, w: &mut impl Write) -> std::io::Result<()> {
        let events: Vec<ChromeEvent> = self
            .spans()
            .into_iter()
            .map(|s| ChromeEvent {
                name: s.name,
                cat: s.cat,
                ph: "X",
                ts: s.start_us,
                dur: s.dur_us,
                pid: 1,
                tid: s.tid,
            })
            .collect();
        let doc = ChromeTrace {
            traceEvents: events,
        };
        let json = serde_json::to_string_pretty(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        w.write_all(json.as_bytes())
    }

    /// Saves both export forms: Chrome `trace_event` JSON at `path`
    /// (directly loadable in `chrome://tracing`/Perfetto) and the JSONL
    /// form alongside it with the extension replaced by `jsonl`.
    /// Returns the JSONL path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut chrome = std::fs::File::create(path)?;
        self.write_chrome(&mut chrome)?;
        let jsonl_path = path.with_extension("jsonl");
        let mut jsonl = std::fs::File::create(&jsonl_path)?;
        self.write_jsonl(&mut jsonl)?;
        Ok(jsonl_path)
    }
}

impl SpanSink for Tracer {
    fn begin(&self, name: &str, cat: &str) -> u64 {
        let start_us = self.now_us();
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next_tid = state.threads.len() as u64;
        let tid = *state
            .threads
            .entry(std::thread::current().id())
            .or_insert(next_tid);
        state.next_token += 1;
        let token = state.next_token;
        state.open.insert(
            token,
            OpenSpan {
                name: name.to_owned(),
                cat: cat.to_owned(),
                tid,
                start_us,
            },
        );
        token
    }

    fn end(&self, token: u64) {
        let end_us = self.now_us();
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(open) = state.open.remove(&token) {
            state.done.push(SpanRecord {
                name: open.name,
                cat: open.cat,
                tid: open.tid,
                start_us: open.start_us,
                dur_us: end_us.saturating_sub(open.start_us),
            });
        }
    }
}

/// One `trace_event` entry (the "complete event" form).
#[derive(Serialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: &'static str,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u64,
}

/// The `trace_event` document wrapper. The field is named exactly as
/// the Chrome format requires (the vendored serde has no `rename`).
#[derive(Serialize)]
#[allow(non_snake_case)]
struct ChromeTrace {
    traceEvents: Vec<ChromeEvent>,
}

/// Reads back a JSONL trace written by [`Tracer::write_jsonl`].
///
/// # Errors
///
/// I/O errors, or `InvalidData` on a malformed line.
pub fn read_trace_jsonl(path: &std::path::Path) -> std::io::Result<Vec<SpanRecord>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morello_sim::span;

    #[test]
    fn records_nested_and_parallel_spans() {
        let tracer = Tracer::new();
        {
            let _sweep = span(&tracer, "sweep", "sweep");
            std::thread::scope(|s| {
                for i in 0..2 {
                    let t = &tracer;
                    s.spawn(move || {
                        let _cell = span(t, &format!("cell {i}"), "run");
                    });
                }
            });
        }
        assert_eq!(tracer.open_spans(), 0);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 3);
        let sweep = spans.iter().find(|s| s.cat == "sweep").unwrap();
        for cell in spans.iter().filter(|s| s.cat == "run") {
            assert!(cell.start_us >= sweep.start_us);
            assert!(cell.tid != sweep.tid, "workers get their own track");
        }
    }

    #[test]
    fn exports_jsonl_and_chrome_forms() {
        let tracer = Tracer::new();
        {
            let _a = span(&tracer, "lower x", "lower");
        }
        {
            let _b = span(&tracer, "run x", "run");
        }
        let mut jsonl = Vec::new();
        tracer.write_jsonl(&mut jsonl).unwrap();
        let text = String::from_utf8(jsonl).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let rec: SpanRecord = serde_json::from_str(line).unwrap();
            assert!(!rec.name.is_empty());
        }
        let mut chrome = Vec::new();
        tracer.write_chrome(&mut chrome).unwrap();
        let text = String::from_utf8(chrome).unwrap();
        let doc: serde::Value = serde_json::from_str(&text).unwrap();
        let map = serde::as_map(&doc).unwrap();
        let events = match serde::map_get(map, "traceEvents").expect("traceEvents key") {
            serde::Value::Seq(s) => s,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(events.len(), 2);
        for ev in events {
            let ev = serde::as_map(ev).unwrap();
            assert_eq!(
                serde::map_get(ev, "ph"),
                Some(&serde::Value::Str("X".to_owned()))
            );
            assert!(serde::map_get(ev, "ts").is_some());
            assert!(serde::map_get(ev, "dur").is_some());
        }
    }

    #[test]
    fn save_writes_both_files() {
        let tracer = Tracer::new();
        {
            let _a = span(&tracer, "report", "report");
        }
        let dir = std::env::temp_dir().join("morello_obs_trace_test");
        let path = dir.join("trace.json");
        let jsonl = tracer.save(&path).unwrap();
        assert_eq!(jsonl, dir.join("trace.jsonl"));
        let back = read_trace_jsonl(&jsonl).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].cat, "report");
        let chrome = std::fs::read_to_string(&path).unwrap();
        assert!(chrome.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
