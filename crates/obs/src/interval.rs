//! Windowed PMU collection — the simulator's analogue of the paper's
//! `pmcstat -w` sampling loop.
//!
//! [`IntervalSampler`] wraps a [`TimingCore`] behind the same
//! [`EventSink`] interface and, every `window` simulated cycles, takes a
//! cheap non-consuming snapshot and emits the *delta* of every Table 1
//! event over the window, plus the derived metrics computed on those
//! deltas (per-window IPC, miss rates, top-down shares).
//!
//! Because every counter the timing model produces is cumulative and
//! monotone, the per-window deltas telescope: summed over the whole run
//! they reproduce the single-shot [`EventCounts`] exactly — a property
//! locked by an integration test.

use cheri_isa::{lower, Abi, EventSink, Interp, InterpError, OpClass, RetiredEvent};
use cheri_workloads::Workload;
use morello_pmu::{DerivedMetrics, EventCounts, PmuEvent};
use morello_sim::{Platform, RunError};
use morello_uarch::{TimingCore, UarchConfig, UarchStats};
use serde::{Deserialize, Serialize};

/// One window of the PMU time-series: event-count deltas over
/// `[start_cycle, end_cycle)` and the derived metrics of that window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Window index, starting at 0.
    pub index: usize,
    /// First cycle covered by the window (inclusive).
    pub start_cycle: u64,
    /// Cycle the window was flushed at (exclusive).
    pub end_cycle: u64,
    /// Per-event deltas over this window.
    pub counts: EventCounts,
    /// Table 1 derived metrics computed on the window's deltas.
    pub derived: DerivedMetrics,
}

/// An [`EventSink`] that forwards every retired instruction to an inner
/// [`TimingCore`] and flushes an [`IntervalSample`] each time the core
/// crosses a window boundary.
pub struct IntervalSampler {
    core: TimingCore,
    window: u64,
    next_boundary: u64,
    last: EventCounts,
    last_cycle: u64,
    samples: Vec<IntervalSample>,
}

impl IntervalSampler {
    /// Creates a sampler flushing every `window` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn new(config: UarchConfig, window: u64) -> IntervalSampler {
        assert!(window > 0, "sampling window must be at least one cycle");
        IntervalSampler {
            core: TimingCore::new(config),
            window,
            next_boundary: window,
            last: EventCounts::new(),
            last_cycle: 0,
            samples: Vec::new(),
        }
    }

    /// The window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Windows flushed so far.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    fn flush(&mut self) {
        let snap = EventCounts::from_uarch(&self.core.snapshot());
        let cycle = self.core.cycles();
        let delta = snap.delta(&self.last);
        self.samples.push(IntervalSample {
            index: self.samples.len(),
            start_cycle: self.last_cycle,
            end_cycle: cycle,
            derived: DerivedMetrics::from_counts(&delta),
            counts: delta,
        });
        self.last = snap;
        self.last_cycle = cycle;
        self.next_boundary = (cycle / self.window + 1) * self.window;
    }

    /// Flushes the final (possibly partial) window and returns the full
    /// run statistics together with the time-series.
    pub fn finish(mut self) -> (UarchStats, Vec<IntervalSample>) {
        if self.core.cycles() > self.last_cycle || self.samples.is_empty() {
            self.flush();
        }
        (self.core.snapshot(), self.samples)
    }
}

impl EventSink for IntervalSampler {
    #[inline]
    fn retire(&mut self, ev: RetiredEvent) {
        self.core.retire(ev);
        if self.core.cycles() >= self.next_boundary {
            self.flush();
        }
    }

    #[inline]
    fn retire_classified(&mut self, ev: RetiredEvent, class: OpClass) {
        self.core.retire_classified(ev, class);
        if self.core.cycles() >= self.next_boundary {
            self.flush();
        }
    }

    #[inline]
    fn region(&mut self, id: u32) {
        self.core.region(id);
    }
}

/// A run collected through an [`IntervalSampler`]: the final statistics
/// plus the windowed time-series.
#[derive(Clone, Debug, Serialize)]
pub struct SampledRun {
    /// Workload name.
    pub workload: String,
    /// The ABI run.
    pub abi: Abi,
    /// Window length in cycles.
    pub window: u64,
    /// Full-run statistics (identical to an unsampled run).
    pub stats: UarchStats,
    /// Per-window event deltas and derived metrics.
    pub samples: Vec<IntervalSample>,
    /// Program exit code (0 when the run was truncated).
    pub exit_code: u64,
    /// The run stopped at the interpreter's instruction budget instead
    /// of completing: everything sampled up to the cut-off is real, but
    /// there is no exit code and no allocator exit statistics.
    #[serde(default)]
    pub truncated: bool,
}

/// Runs one workload with windowed collection.
///
/// # Errors
///
/// [`RunError::UnsupportedAbi`] for the paper's NA cells;
/// [`RunError::Interp`] if execution faults.
pub fn run_sampled(
    platform: &Platform,
    workload: &Workload,
    abi: Abi,
    window: u64,
) -> Result<SampledRun, RunError> {
    if !workload.supports(abi) {
        return Err(RunError::UnsupportedAbi {
            workload: workload.name.to_owned(),
            abi,
        });
    }
    let prog = lower(&workload.build(abi, platform.scale));
    let mut sampler = IntervalSampler::new(platform.uarch, window);
    let result = match Interp::new(platform.interp).run(&prog, &mut sampler) {
        Ok(r) => Some(r),
        // A fuel-exhausted run is a partial observation, not a failed
        // one: everything sampled up to the budget is real, and the
        // journals must record it.
        Err(InterpError::FuelExhausted { .. }) => None,
        Err(e) => return Err(e.into()),
    };
    let truncated = result.is_none();
    let (mut stats, mut samples) = sampler.finish();
    // The allocator's revocation counters are run totals read at exit
    // (not cycle-attributed), so fold them into the final statistics and
    // credit them to the last window — the deltas still telescope. A
    // truncated run never reached exit, so there is nothing to fold.
    if let Some(result) = &result {
        morello_sim::fold_heap_stats(&mut stats, &result.heap_stats);
    }
    if let Some(last) = samples.last_mut() {
        let full = EventCounts::from_uarch(&stats);
        for event in [
            PmuEvent::SweepGranulesVisited,
            PmuEvent::SweepTagsCleared,
            PmuEvent::RevocationEpochs,
            PmuEvent::QuarantineBytesHighWater,
            PmuEvent::FaultsInjected,
            PmuEvent::FaultsTrapped,
            PmuEvent::SilentCorruptions,
            PmuEvent::RecoveryUnwinds,
        ] {
            last.counts.set(event, full.get(event));
        }
        last.derived = DerivedMetrics::from_counts(&last.counts);
    }
    Ok(SampledRun {
        workload: workload.name.to_owned(),
        abi,
        window,
        stats,
        samples,
        exit_code: result.map_or(0, |r| r.exit_code),
        truncated,
    })
}
