//! Cycle-attribution profiling over workload-declared regions.
//!
//! Workload builders tag their phases with
//! [`ProgramBuilder::region`](cheri_isa::ProgramBuilder::region) /
//! [`FunctionBuilder::region`](cheri_isa::FunctionBuilder::region)
//! markers; the markers survive lowering and reach the event stream as
//! [`EventSink::region`] calls. The [`Profiler`] snapshots the inner
//! [`TimingCore`] at every marker and charges the statistics accrued
//! since the previous marker to the region that was in force — a
//! deterministic, zero-overhead analogue of sampling profilers like
//! `pmcstat -G` on the real platform.

use cheri_isa::{lower, Abi, EventSink, Interp, InterpError, OpClass, RetiredEvent};
use cheri_workloads::Workload;
use morello_pmu::{fmt_metric, Table};
use morello_sim::{Platform, RunError};
use morello_uarch::{TimingCore, UarchConfig, UarchStats};
use serde::{Deserialize, Serialize};

/// Everything attributed to one region over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionProfile {
    /// Region name (from the program's region table), or `(outside)` for
    /// work before the first marker / after a region end.
    pub name: String,
    /// Retired instructions.
    pub retired: u64,
    /// Core cycles.
    pub cycles: u64,
    /// Frontend stall cycles.
    pub stall_frontend: u64,
    /// Backend stall cycles.
    pub stall_backend: u64,
    /// Backend-memory cycles (L1 + L2 + external, the top-down memory
    /// bound numerator).
    pub backend_mem_cycles: u64,
    /// L1D refills.
    pub l1d_refills: u64,
    /// L2 refills.
    pub l2_refills: u64,
    /// LLC read misses.
    pub llc_read_misses: u64,
    /// Data-side page-table walks.
    pub dtlb_walks: u64,
    /// Branches that changed PCC bounds (resteer candidates).
    pub pcc_resteers: u64,
    /// Frontend cycles charged specifically to PCC-bounds resteers.
    pub pcc_stall_cycles: u64,
}

impl RegionProfile {
    fn charge(&mut self, now: &UarchStats, then: &UarchStats) {
        self.retired += now.inst_retired - then.inst_retired;
        self.cycles += now.cpu_cycles - then.cpu_cycles;
        self.stall_frontend += now.stall_frontend - then.stall_frontend;
        self.stall_backend += now.stall_backend - then.stall_backend;
        self.backend_mem_cycles += (now.bound_mem_l1 + now.bound_mem_l2 + now.bound_mem_ext)
            - (then.bound_mem_l1 + then.bound_mem_l2 + then.bound_mem_ext);
        self.l1d_refills += now.l1d_cache_refill - then.l1d_cache_refill;
        self.l2_refills += now.l2d_cache_refill - then.l2d_cache_refill;
        self.llc_read_misses += now.ll_cache_miss_rd - then.ll_cache_miss_rd;
        self.dtlb_walks += now.dtlb_walk - then.dtlb_walk;
        self.pcc_resteers += now.pcc_change_branches - then.pcc_change_branches;
        self.pcc_stall_cycles += now.pcc_stall_cycles - then.pcc_stall_cycles;
    }

    /// Instructions per cycle within the region.
    pub fn ipc(&self) -> f64 {
        self.retired as f64 / self.cycles.max(1) as f64
    }

    /// Share of the region's cycles spent backend-memory bound.
    pub fn backend_mem_share(&self) -> f64 {
        self.backend_mem_cycles as f64 / self.cycles.max(1) as f64
    }
}

const OUTSIDE: u32 = u32::MAX;

/// An [`EventSink`] that attributes the timing model's statistics to the
/// region in force at each retired instruction.
pub struct Profiler {
    core: TimingCore,
    names: Vec<String>,
    regions: Vec<RegionProfile>,
    outside: RegionProfile,
    current: u32,
    mark: UarchStats,
}

impl Profiler {
    /// Creates a profiler over the given region-name table (a program's
    /// `regions` vector; ids index into it).
    pub fn new(config: UarchConfig, names: Vec<String>) -> Profiler {
        let regions = names
            .iter()
            .map(|n| RegionProfile {
                name: n.clone(),
                ..RegionProfile::default()
            })
            .collect();
        Profiler {
            core: TimingCore::new(config),
            names,
            regions,
            outside: RegionProfile {
                name: "(outside)".to_owned(),
                ..RegionProfile::default()
            },
            current: OUTSIDE,
            mark: UarchStats::default(),
        }
    }

    fn switch_to(&mut self, id: u32) {
        let now = self.core.snapshot();
        let slot = match self.current {
            OUTSIDE => &mut self.outside,
            i => &mut self.regions[i as usize],
        };
        slot.charge(&now, &self.mark);
        self.mark = now;
        self.current = id;
    }

    /// Charges the residual to the current region and returns the
    /// full-run statistics plus one profile per region. The `(outside)`
    /// profile comes last; regions keep program order.
    pub fn finish(mut self) -> (UarchStats, Vec<RegionProfile>) {
        self.switch_to(OUTSIDE);
        let mut out = self.regions;
        out.push(self.outside);
        (self.core.snapshot(), out)
    }
}

impl EventSink for Profiler {
    #[inline]
    fn retire(&mut self, ev: RetiredEvent) {
        self.core.retire(ev);
    }

    #[inline]
    fn retire_classified(&mut self, ev: RetiredEvent, class: OpClass) {
        self.core.retire_classified(ev, class);
    }

    fn region(&mut self, id: u32) {
        // Unknown ids (no name-table entry) grow the table defensively.
        if id != OUTSIDE && id as usize >= self.names.len() {
            for i in self.names.len()..=id as usize {
                let name = format!("region#{i}");
                self.names.push(name.clone());
                self.regions.push(RegionProfile {
                    name,
                    ..RegionProfile::default()
                });
            }
        }
        self.switch_to(id);
    }
}

/// A fully profiled run.
#[derive(Clone, Debug, Serialize)]
pub struct ProfiledRun {
    /// Workload name.
    pub workload: String,
    /// The ABI run.
    pub abi: Abi,
    /// Full-run statistics (identical to an unprofiled run).
    pub stats: UarchStats,
    /// Per-region attribution, program order, `(outside)` last.
    pub regions: Vec<RegionProfile>,
    /// Program exit code (0 when the run was truncated).
    pub exit_code: u64,
    /// The run stopped at the interpreter's instruction budget instead
    /// of completing: the per-region attribution covers the executed
    /// prefix only.
    #[serde(default)]
    pub truncated: bool,
}

/// Runs one workload under the cycle-attribution profiler.
///
/// # Errors
///
/// [`RunError::UnsupportedAbi`] for the paper's NA cells;
/// [`RunError::Interp`] if execution faults.
pub fn run_profiled(
    platform: &Platform,
    workload: &Workload,
    abi: Abi,
) -> Result<ProfiledRun, RunError> {
    if !workload.supports(abi) {
        return Err(RunError::UnsupportedAbi {
            workload: workload.name.to_owned(),
            abi,
        });
    }
    let prog = lower(&workload.build(abi, platform.scale));
    let mut profiler = Profiler::new(platform.uarch, prog.regions.clone());
    let result = match Interp::new(platform.interp).run(&prog, &mut profiler) {
        Ok(r) => Some(r),
        // A fuel-exhausted run keeps its partial attribution: the
        // regions profiled before the budget ran out are real.
        Err(InterpError::FuelExhausted { .. }) => None,
        Err(e) => return Err(e.into()),
    };
    let truncated = result.is_none();
    let (mut stats, regions) = profiler.finish();
    // Run-total allocator counters, as in an unsampled `Runner` run;
    // the per-region rows keep hardware-attributed statistics only. A
    // truncated run never reached exit, so there is nothing to fold.
    if let Some(result) = &result {
        morello_sim::fold_heap_stats(&mut stats, &result.heap_stats);
    }
    Ok(ProfiledRun {
        workload: workload.name.to_owned(),
        abi,
        stats,
        regions,
        exit_code: result.map_or(0, |r| r.exit_code),
        truncated,
    })
}

/// Renders the hotspot table: regions sorted by cycles, with shares of
/// the run total and the stall/miss columns that explain *why* a region
/// is hot.
pub fn hotspot_table(regions: &[RegionProfile]) -> Table {
    let total: u64 = regions.iter().map(|r| r.cycles).sum();
    let mut sorted: Vec<&RegionProfile> = regions.iter().collect();
    sorted.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.name.cmp(&b.name)));
    let mut t = Table::new(&[
        "Region",
        "Cycles",
        "Cycles %",
        "Retired",
        "IPC",
        "BE-mem %",
        "FE %",
        "PCC %",
        "L1D refills",
        "L2 refills",
    ]);
    for r in sorted {
        if r.cycles == 0 && r.retired == 0 {
            continue;
        }
        let c = r.cycles.max(1) as f64;
        t.row(&[
            r.name.clone(),
            r.cycles.to_string(),
            fmt_metric(r.cycles as f64 / total.max(1) as f64 * 100.0),
            r.retired.to_string(),
            fmt_metric(r.ipc()),
            fmt_metric(r.backend_mem_cycles as f64 / c * 100.0),
            fmt_metric(r.stall_frontend as f64 / c * 100.0),
            fmt_metric(r.pcc_stall_cycles as f64 / c * 100.0),
            r.l1d_refills.to_string(),
            r.l2_refills.to_string(),
        ]);
    }
    t
}

/// Renders collapsed-stack lines (`program;region cycles`), the input
/// format of flamegraph tooling.
pub fn collapsed_stacks(program: &str, regions: &[RegionProfile]) -> String {
    let mut out = String::new();
    for r in regions {
        if r.cycles == 0 {
            continue;
        }
        out.push_str(program);
        out.push(';');
        out.push_str(&r.name);
        out.push(' ');
        out.push_str(&r.cycles.to_string());
        out.push('\n');
    }
    out
}
