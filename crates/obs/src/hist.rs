//! A fixed-layout log-bucket histogram for latency quantiles.
//!
//! The serving simulation records one latency sample per completed
//! request — far too many to sort — so quantiles come from an
//! HDR-style histogram: values bucket into powers of two subdivided
//! into [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantisation error of any reported quantile at `1 / SUB_BUCKETS`
//! (6.25%).
//!
//! The layout is *fixed* (no auto-resizing, no configuration), so two
//! histograms are always mergeable and a merge is a plain per-bucket
//! add: shards recorded on different worker threads fold into exactly
//! the histogram a single thread would have produced, whatever the
//! shard boundaries or merge order. That property is what keeps
//! `fig11_service` byte-identical across `--jobs` counts, and the
//! proptest below locks it.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two octave (the precision knob).
pub const SUB_BUCKETS: usize = 16;

const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Bucket count: values below [`SUB_BUCKETS`] get exact unit buckets,
/// then 60 octaves (2^4 .. 2^63) of [`SUB_BUCKETS`] each.
pub const BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// A mergeable log-bucket histogram over `u64` samples.
///
/// Construction is `O(1)`, recording is `O(1)`, and quantile queries
/// walk the (fixed, small) bucket array. The exact minimum and maximum
/// are tracked alongside the buckets so `quantile(0.0)` and
/// `quantile(1.0)` are exact and interior quantiles clamp into
/// `[min, max]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + ((octave - SUB_BITS) as usize) * SUB_BUCKETS + sub
}

/// The inclusive upper bound of a bucket — the value a quantile query
/// reports for samples in it (never an underestimate, at most
/// `1/SUB_BUCKETS` above the true sample).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = (index - SUB_BUCKETS) as u32 / SUB_BUCKETS as u32 + SUB_BITS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let width = 1_u64 << (octave - SUB_BITS);
    let lower = (1_u64 << octave) + sub * width;
    lower + (width - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Bucket and total counts saturate at
    /// `u64::MAX` (and the sum at `u128::MAX`) rather than wrapping, so
    /// a pathological stream degrades quantile precision instead of
    /// corrupting the histogram.
    pub fn record(&mut self, value: u64) {
        let i = bucket_index(value);
        self.counts[i] = self.counts[i].saturating_add(1);
        self.total = self.total.saturating_add(1);
        self.sum = self.sum.saturating_add(u128::from(value));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum sample, `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum sample, `0` when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q * count)`, clamped to
    /// the exact observed `[min, max]`. Within `1/`[`SUB_BUCKETS`]
    /// relative error of the exact order statistic; `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank == 1 {
            return self.min;
        }
        if rank == self.total {
            return self.max;
        }
        let mut seen = 0_u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Merging is commutative
    /// and associative, and the merge of any sharding of a sample
    /// stream equals the histogram of the unsharded stream. Counts
    /// saturate rather than wrap, mirroring [`LogHistogram::record`].
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile of a sorted sample set, same rank convention as
    /// [`LogHistogram::quantile`].
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        let mut prev = None;
        for v in (0..4096).chain([u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) + 12345]) {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if let Some((pv, pi)) = prev {
                if v > pv {
                    assert!(i >= pi, "bucket order violated at {v}");
                }
            }
            prev = Some((v, i));
        }
        // Unit buckets are exact for small values.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_match_exact_sorted_quantiles_within_bucket_error() {
        // A latency-shaped sample: a tight body plus a long tail.
        let mut samples: Vec<u64> = (0..2000).map(|i| 10_000 + (i * 37) % 5_000).collect();
        samples.extend((0..20).map(|i| 200_000 + i * 50_000));
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            assert!(est >= exact, "q{q}: estimate {est} under exact {exact}");
            let err = (est - exact) as f64 / exact.max(1) as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "q{q}: error {err} above 1/{SUB_BUCKETS} (est {est}, exact {exact})"
            );
        }
        assert_eq!(h.quantile(0.0), *sorted.first().unwrap());
        assert_eq!(h.quantile(1.0), *sorted.last().unwrap());
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.sum(), samples.iter().map(|&s| u128::from(s)).sum());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merging_empty_shards_is_the_identity() {
        let mut filled = LogHistogram::new();
        for v in [3, 99, 4096, 1 << 33] {
            filled.record(v);
        }
        // empty.merge(filled) == filled.
        let mut onto_empty = LogHistogram::new();
        onto_empty.merge(&filled);
        assert_eq!(onto_empty, filled);
        // filled.merge(empty) == filled — and min must survive the
        // empty shard's sentinel `u64::MAX` min.
        let mut onto_filled = filled.clone();
        onto_filled.merge(&LogHistogram::new());
        assert_eq!(onto_filled, filled);
        assert_eq!(onto_filled.min(), 3);
        // empty.merge(empty) stays a well-formed empty histogram.
        let mut both_empty = LogHistogram::new();
        both_empty.merge(&LogHistogram::new());
        assert_eq!(both_empty, LogHistogram::new());
        assert_eq!(both_empty.count(), 0);
        assert_eq!(both_empty.min(), 0);
        assert_eq!(both_empty.quantile(0.5), 0);
    }

    #[test]
    fn single_sample_answers_every_quantile_exactly() {
        for v in [0, 1, 17, 12_345, u64::MAX] {
            let mut h = LogHistogram::new();
            h.record(v);
            for q in [0.0, 0.001, 0.25, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "q{q} of single sample {v}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            assert_eq!(h.mean(), v as f64);
        }
    }

    #[test]
    fn rank_quantiles_at_exact_bounds_hit_min_and_max() {
        let mut h = LogHistogram::new();
        for v in [10, 20, 30, 40, 50] {
            h.record(v);
        }
        // q=0.0 has rank ceil(0) clamped up to 1 → exact min; q=1.0 has
        // rank == total → exact max. Neither passes through a bucket
        // upper bound.
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 50);
        // A tiny-but-positive q also clamps to rank 1.
        assert_eq!(h.quantile(1e-12), 10);
        // And a q above 1.0 clamps to rank total rather than running
        // off the bucket array.
        assert_eq!(h.quantile(1.5), 50);
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut h = LogHistogram::new();
        h.record(7);
        h.record(9);
        // Repeated self-merge doubles every counter; ~70 doublings
        // drives them far past u64::MAX, which must saturate, not wrap
        // or panic.
        for _ in 0..70 {
            let snapshot = h.clone();
            h.merge(&snapshot);
        }
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 9);
        // Quantiles stay well-formed on a saturated histogram.
        assert!(h.quantile(0.5) >= 7);
        assert!(h.quantile(0.5) <= 9);
        // Saturated recording is also a no-panic no-op on the counts.
        h.record(8);
        assert_eq!(h.count(), u64::MAX);
    }

    #[test]
    fn merge_is_commutative_and_matches_unsharded() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..1000_u64 {
            let v = (i * 2654435761) % 1_000_000;
            whole.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }
}
