//! # morello-obs
//!
//! The observability layer of the reproduction — the tooling the paper's
//! methodology leans on around the raw counters:
//!
//! * **Windowed PMU collection** ([`IntervalSampler`]): the `pmcstat -w`
//!   analogue. Samples every Table 1 event each N simulated cycles and
//!   emits per-window deltas plus derived metrics as a time-series. The
//!   deltas of a run telescope: summed over all windows they equal the
//!   single-shot [`EventCounts`](morello_pmu::EventCounts) of the same
//!   run, exactly.
//! * **Cycle-attribution profiling** ([`Profiler`]): workloads tag their
//!   phases with region markers
//!   ([`ProgramBuilder::region`](cheri_isa::ProgramBuilder::region));
//!   the profiler attributes retired instructions, stall cycles, cache
//!   and TLB misses, and PCC resteers to the region in force, and renders
//!   a hotspot table plus collapsed-stack lines for flamegraph tooling.
//! * **Structured run journals** ([`JsonlJournal`]): a
//!   [`RunObserver`](morello_sim::RunObserver) that appends one JSON line
//!   per completed run — a machine-readable lab notebook.
//! * **Phase tracing** ([`Tracer`]): a
//!   [`SpanSink`](morello_sim::SpanSink) recording thread-tagged
//!   `lower`/`run`/`sweep`/`fault-campaign`/`report` spans, exported as
//!   JSONL and as Chrome `trace_event` JSON for
//!   `chrome://tracing`/Perfetto — the `--trace` flag of every
//!   experiment binary.
//! * **Latency quantiles** ([`LogHistogram`]): a fixed-layout
//!   log-bucket histogram (HDR-style, 16 sub-buckets per octave) whose
//!   merges are exact — per-thread shards fold into the histogram a
//!   single thread would have recorded, which is what keeps the serving
//!   simulation's p50/p99/p999 byte-identical across `--jobs` counts.
//!
//! ```no_run
//! use cheri_isa::Abi;
//! use cheri_workloads::{by_key, Scale};
//! use morello_obs::{hotspot_table, run_profiled};
//! use morello_sim::Platform;
//!
//! let platform = Platform::morello().with_scale(Scale::Small);
//! let w = by_key("omnetpp_520").unwrap();
//! let run = run_profiled(&platform, &w, Abi::Purecap)?;
//! println!("{}", hotspot_table(&run.regions).render());
//! # Ok::<(), morello_sim::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod interval;
mod journal;
mod profile;
mod trace;

pub use hist::{LogHistogram, BUCKETS, SUB_BUCKETS};
pub use interval::{run_sampled, IntervalSample, IntervalSampler, SampledRun};
pub use journal::{read_journal, JsonlJournal};
pub use profile::{
    collapsed_stacks, hotspot_table, run_profiled, ProfiledRun, Profiler, RegionProfile,
};
pub use trace::{read_trace_jsonl, SpanRecord, Tracer};
