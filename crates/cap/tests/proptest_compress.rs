//! Property-based tests for the compressed capability encoding and the
//! monotonicity invariants of capability derivation.

use cheri_cap::{representable_alignment_mask, round_representable_length, Capability, Perms};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Any rounded length is itself exactly representable at any base that
    /// satisfies the alignment mask.
    #[test]
    fn rounded_length_is_representable(len in 0u64..=(1 << 48), base_seed in any::<u64>()) {
        let rlen = round_representable_length(len);
        prop_assume!(rlen >= len); // skip the 2^64-wrap corner
        let mask = representable_alignment_mask(len);
        let base = (base_seed & mask) & ((1 << 50) - 1) & mask;
        let cap = Capability::root_rw().set_bounds_exact(base, rlen);
        prop_assert!(cap.is_ok(), "base={base:#x} rlen={rlen:#x}: {cap:?}");
    }

    /// Rounding never shrinks and is idempotent.
    #[test]
    fn rounding_is_idempotent(len in 0u64..=(1 << 60)) {
        let r = round_representable_length(len);
        prop_assume!(r != 0 || len == 0);
        prop_assert!(r >= len);
        prop_assert_eq!(round_representable_length(r), r);
    }

    /// Compressed round-trip is lossless for architecturally derived
    /// capabilities, wherever the cursor sits within bounds.
    #[test]
    fn compressed_roundtrip(
        base in 0u64..(1 << 40),
        len in 1u64..(1 << 30),
        cursor_frac in 0.0f64..1.0,
    ) {
        let mask = representable_alignment_mask(len);
        let base = base & mask;
        let len = round_representable_length(len);
        let cap = Capability::root_rw().set_bounds_exact(base, len).unwrap();
        let addr = base + ((len as f64 * cursor_frac) as u64).min(len - 1);
        let cap = cap.set_address(addr);
        prop_assert!(cap.tag(), "in-bounds cursor must stay representable");
        let rt = Capability::from_compressed(cap.to_compressed(), cap.tag());
        prop_assert_eq!(rt, cap);
    }

    /// In-bounds cursors never clear the tag (the CHERI representability
    /// guarantee), including one-past-the-end.
    #[test]
    fn in_bounds_cursor_keeps_tag(
        base in 0u64..(1 << 40),
        len in 1u64..(1 << 30),
        off_seed in any::<u64>(),
    ) {
        let mask = representable_alignment_mask(len);
        let base = base & mask;
        let len = round_representable_length(len);
        let cap = Capability::root_rw().set_bounds_exact(base, len).unwrap();
        let off = off_seed % (len + 1); // includes one-past-the-end
        prop_assert!(cap.set_address(base + off).tag());
    }

    /// Derivation is monotonic: a child's bounds and permissions are always
    /// contained in the parent's.
    #[test]
    fn derivation_monotonic(
        pbase in 0u64..(1 << 30),
        plen in 4096u64..(1 << 24),
        cbase_off in any::<u64>(),
        clen in 1u64..(1 << 20),
        perm_bits in any::<u32>(),
    ) {
        let pmask = representable_alignment_mask(plen);
        let pbase = pbase & pmask;
        let plen = round_representable_length(plen);
        let parent = Capability::root_rw().set_bounds_exact(pbase, plen).unwrap();
        let cbase = pbase + (cbase_off % plen);
        match parent.set_bounds(cbase, clen) {
            Ok(child) => {
                prop_assert!(child.base() >= parent.base());
                prop_assert!(child.top() <= parent.top());
                prop_assert!(child.base() <= cbase);
                prop_assert!(child.top() >= cbase as u128 + clen as u128
                    || child.top() == parent.top());
                let restricted = child.and_perms(Perms::from_bits_truncate(perm_bits)).unwrap();
                prop_assert!(child.perms().contains(restricted.perms()));
            }
            Err(fault) => {
                // The only legal failure is monotonicity: the request (after
                // outward rounding, which may widen beyond the simple mask
                // estimate) escaped the parent. It must never fail for an
                // exactly-contained, exactly-representable request.
                prop_assert_eq!(fault.kind, cheri_cap::FaultKind::MonotonicityViolation);
                let exact_fits = (cbase as u128 + clen as u128) <= parent.top()
                    && Capability::root_rw().set_bounds_exact(cbase, clen).is_ok();
                prop_assert!(!exact_fits, "exactly representable contained request must succeed");
            }
        }
    }

    /// A plain-data overwrite model: any 128-bit pattern decodes without
    /// panicking and the result is untagged when told so.
    #[test]
    fn arbitrary_patterns_decode_total(meta in any::<u64>(), addr in any::<u64>()) {
        let cc = cheri_cap::CompressedCap { meta, addr };
        let cap = Capability::from_compressed(cc, false);
        prop_assert!(!cap.tag());
        prop_assert_eq!(cap.address(), addr);
        // base <= top may be violated by garbage patterns; such caps must
        // simply fail all checks.
        if cap.top() < cap.base() as u128 {
            prop_assert!(cap.check_access(cap.address(), 1, Perms::NONE).is_err());
        }
    }

    /// Sealing freezes a capability and unsealing with the right authority
    /// restores it exactly.
    #[test]
    fn seal_unseal_roundtrip(base in 0u64..(1 << 30), len in 16u64..4096, ot in 4u16..1000) {
        let cap = Capability::root_rw().set_bounds_exact(base & !15, len).unwrap();
        let auth = Capability::root_all()
            .set_bounds_exact(0, 4096).unwrap()
            .set_address(u64::from(ot));
        let sealed = cap.seal(&auth).unwrap();
        prop_assert!(sealed.is_sealed());
        prop_assert!(sealed.set_bounds(base & !15, 8).is_err());
        prop_assert_eq!(sealed.unseal(&auth).unwrap(), cap);
    }
}
