//! Capability permission bits.

use core::fmt;
use core::ops::{BitAnd, BitOr, Not};
use serde::{Deserialize, Serialize};

/// A set of capability permissions.
///
/// Permissions govern which operations a capability authorises. They are
/// monotonic: derived capabilities may only clear bits, never set them
/// (see [`Capability::and_perms`](crate::Capability::and_perms)).
///
/// The set mirrors the architecturally significant Morello permissions used
/// by the paper's workloads; system/compartment permissions that never
/// affect the measured behaviour are collapsed into [`Perms::SYSTEM`].
///
/// ```
/// use cheri_cap::Perms;
/// let rw = Perms::LOAD | Perms::STORE;
/// assert!(rw.contains(Perms::LOAD));
/// assert!(!rw.contains(Perms::EXECUTE));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Perms(u32);

impl Perms {
    /// The empty permission set.
    pub const NONE: Perms = Perms(0);
    /// Permission to load (read) data.
    pub const LOAD: Perms = Perms(1 << 0);
    /// Permission to store (write) data.
    pub const STORE: Perms = Perms(1 << 1);
    /// Permission to execute (fetch instructions through this capability).
    pub const EXECUTE: Perms = Perms(1 << 2);
    /// Permission to load capabilities (with their tags) from memory.
    pub const LOAD_CAP: Perms = Perms(1 << 3);
    /// Permission to store capabilities (with their tags) to memory.
    pub const STORE_CAP: Perms = Perms(1 << 4);
    /// Permission to store local (non-global) capabilities.
    pub const STORE_LOCAL_CAP: Perms = Perms(1 << 5);
    /// Permission to seal other capabilities with this capability's otype.
    pub const SEAL: Perms = Perms(1 << 6);
    /// Permission to unseal capabilities sealed with this capability's otype.
    pub const UNSEAL: Perms = Perms(1 << 7);
    /// The global bit: capability may be stored anywhere.
    pub const GLOBAL: Perms = Perms(1 << 8);
    /// Permission to branch to a sealed entry (sentry) capability.
    pub const BRANCH_SEALED_PAIR: Perms = Perms(1 << 9);
    /// Collapsed system/compartment permissions.
    pub const SYSTEM: Perms = Perms(1 << 10);
    /// The mutable-load permission (Morello: LoadMutable).
    pub const MUTABLE_LOAD: Perms = Perms(1 << 11);

    /// Every permission bit set (the root permission set).
    pub const ALL: Perms = Perms((1 << 12) - 1);

    /// Read/write/load-cap/store-cap data permissions (a typical heap root).
    pub const DATA_RW: Perms = Perms(
        Perms::LOAD.0
            | Perms::STORE.0
            | Perms::LOAD_CAP.0
            | Perms::STORE_CAP.0
            | Perms::STORE_LOCAL_CAP.0
            | Perms::GLOBAL.0
            | Perms::MUTABLE_LOAD.0,
    );

    /// Execute + load permissions (a typical PCC permission set).
    pub const CODE: Perms =
        Perms(Perms::LOAD.0 | Perms::EXECUTE.0 | Perms::GLOBAL.0 | Perms::BRANCH_SEALED_PAIR.0);

    /// Returns `true` when every bit of `other` is present in `self`.
    #[inline]
    pub const fn contains(self, other: Perms) -> bool {
        (self.0 & other.0) == other.0
    }

    /// Returns `true` when no permission bits are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the intersection of the two permission sets.
    #[inline]
    pub const fn intersection(self, other: Perms) -> Perms {
        Perms(self.0 & other.0)
    }

    /// The raw bit representation (used by the compressed encoding).
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a permission set from raw bits, ignoring undefined bits.
    #[inline]
    pub const fn from_bits_truncate(bits: u32) -> Perms {
        Perms(bits & Perms::ALL.0)
    }
}

impl BitOr for Perms {
    type Output = Perms;
    #[inline]
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    #[inline]
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl Not for Perms {
    type Output = Perms;
    #[inline]
    fn not(self) -> Perms {
        Perms(!self.0 & Perms::ALL.0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(Perms, &str); 12] = [
            (Perms::LOAD, "r"),
            (Perms::STORE, "w"),
            (Perms::EXECUTE, "x"),
            (Perms::LOAD_CAP, "R"),
            (Perms::STORE_CAP, "W"),
            (Perms::STORE_LOCAL_CAP, "L"),
            (Perms::SEAL, "s"),
            (Perms::UNSEAL, "u"),
            (Perms::GLOBAL, "g"),
            (Perms::BRANCH_SEALED_PAIR, "b"),
            (Perms::SYSTEM, "S"),
            (Perms::MUTABLE_LOAD, "m"),
        ];
        write!(f, "Perms(")?;
        for (p, n) in NAMES {
            if self.contains(p) {
                write!(f, "{n}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_ops() {
        let rw = Perms::LOAD | Perms::STORE;
        assert!(rw.contains(Perms::LOAD));
        assert!(rw.contains(Perms::STORE));
        assert!(!rw.contains(Perms::EXECUTE));
        assert!(rw.contains(Perms::NONE));
        assert!(Perms::ALL.contains(rw));
    }

    #[test]
    fn intersection_is_monotonic() {
        let a = Perms::DATA_RW;
        let b = Perms::LOAD | Perms::EXECUTE;
        let i = a.intersection(b);
        assert!(a.contains(i));
        assert!(b.contains(i));
        assert_eq!(i, Perms::LOAD);
    }

    #[test]
    fn not_stays_within_defined_bits() {
        let inv = !Perms::NONE;
        assert_eq!(inv, Perms::ALL);
        assert_eq!(!Perms::ALL, Perms::NONE);
    }

    #[test]
    fn from_bits_truncate_masks_undefined() {
        let p = Perms::from_bits_truncate(u32::MAX);
        assert_eq!(p, Perms::ALL);
    }

    #[test]
    fn debug_render() {
        let s = format!("{:?}", Perms::LOAD | Perms::EXECUTE);
        assert_eq!(s, "Perms(rx)");
    }

    #[test]
    fn presets_are_sensible() {
        assert!(Perms::DATA_RW.contains(Perms::LOAD | Perms::STORE));
        assert!(!Perms::DATA_RW.contains(Perms::EXECUTE));
        assert!(Perms::CODE.contains(Perms::EXECUTE));
        assert!(!Perms::CODE.contains(Perms::STORE));
    }
}
