//! Object types and sealing.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A capability object type.
///
/// Sealed capabilities are immutable and non-dereferenceable until unsealed
/// with an authorising capability of matching object type. Morello reserves
/// a handful of low otypes for hardware sealing forms ("sentries", used for
/// return addresses and inter-compartment entry points); we model the
/// unsealed state, the sentry, and user otypes.
///
/// ```
/// use cheri_cap::Otype;
/// assert!(Otype::UNSEALED.is_unsealed());
/// assert!(Otype::SENTRY.is_sentry());
/// let user = Otype::user(42).unwrap();
/// assert_eq!(user.raw(), 42 + Otype::FIRST_USER);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Otype(u16);

impl Otype {
    /// The unsealed object type (Morello encodes this as otype 0).
    pub const UNSEALED: Otype = Otype(0);
    /// The sealed-entry ("sentry") object type used for return addresses and
    /// function entry capabilities.
    pub const SENTRY: Otype = Otype(1);
    /// First otype available to software sealing.
    pub const FIRST_USER: u16 = 4;
    /// Largest encodable otype (15-bit field in the compressed format).
    pub const MAX: u16 = (1 << 15) - 1;

    /// Creates a user (software) object type. Returns `None` when the otype
    /// does not fit the 15-bit field.
    pub fn user(index: u16) -> Option<Otype> {
        let raw = index.checked_add(Self::FIRST_USER)?;
        (raw <= Self::MAX).then_some(Otype(raw))
    }

    /// Rebuilds an otype from its raw 15-bit encoding, truncating to the
    /// field width.
    pub const fn from_raw(raw: u16) -> Otype {
        Otype(raw & Self::MAX)
    }

    /// The raw 15-bit encoding.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Is this the unsealed state?
    pub const fn is_unsealed(self) -> bool {
        self.0 == Self::UNSEALED.0
    }

    /// Is this a hardware sentry type?
    pub const fn is_sentry(self) -> bool {
        self.0 == Self::SENTRY.0
    }

    /// Is this a software (user) sealing type?
    pub const fn is_user(self) -> bool {
        self.0 >= Self::FIRST_USER
    }
}

impl fmt::Debug for Otype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unsealed() {
            write!(f, "Otype(unsealed)")
        } else if self.is_sentry() {
            write!(f, "Otype(sentry)")
        } else {
            write!(f, "Otype({})", self.0)
        }
    }
}

impl fmt::Display for Otype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_otype_range() {
        assert!(Otype::user(0).unwrap().is_user());
        assert!(Otype::user(Otype::MAX).is_none());
        let top = Otype::user(Otype::MAX - Otype::FIRST_USER).unwrap();
        assert_eq!(top.raw(), Otype::MAX);
    }

    #[test]
    fn classification() {
        assert!(Otype::UNSEALED.is_unsealed());
        assert!(!Otype::UNSEALED.is_sentry());
        assert!(Otype::SENTRY.is_sentry());
        assert!(!Otype::SENTRY.is_user());
    }

    #[test]
    fn from_raw_truncates() {
        assert_eq!(Otype::from_raw(u16::MAX).raw(), Otype::MAX);
    }
}
