//! # cheri-cap
//!
//! An architectural model of CHERI capabilities as implemented by the Arm
//! Morello platform, including a CHERI-Concentrate-style 128-bit compressed
//! encoding.
//!
//! A [`Capability`] is an unforgeable, bounded, permissioned fat pointer:
//! it carries a 64-bit cursor address, a `[base, top)` bounds pair (with
//! `top` up to `2^64`), a permission set, an object type for sealing, and a
//! one-bit validity tag. All derivation operations are *monotonic*: bounds
//! can only shrink and permissions can only be dropped.
//!
//! Capabilities are stored in memory in a 128-bit compressed format
//! ([`CompressedCap`]) with a floating-point-like bounds encoding. Not every
//! `(base, top)` pair is representable; large regions must be aligned, and
//! [`representable_alignment_mask`] / [`round_representable_length`] expose
//! the alignment contract that CHERI-aware allocators must follow (this is
//! the mechanism behind the allocation-padding effects measured in the
//! paper).
//!
//! ## Example
//!
//! ```
//! use cheri_cap::{Capability, Perms};
//!
//! // Derive a 64-byte heap capability from the root read/write capability.
//! let root = Capability::root_rw();
//! let obj = root.set_bounds_exact(0x1000, 64).unwrap();
//! assert_eq!(obj.base(), 0x1000);
//! assert_eq!(obj.length(), 64);
//! assert!(obj.check_access(0x1000, 8, Perms::LOAD).is_ok());
//! assert!(obj.check_access(0x1040, 1, Perms::LOAD).is_err()); // out of bounds
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capability;
mod compress;
mod error;
mod otype;
mod perms;

pub use capability::Capability;
pub use compress::{
    representable_alignment, representable_alignment_mask, round_representable_length,
    CompressedCap, BOT_WIDTH, EXP_LOW_BITS, MAX_EXPONENT,
};
pub use error::{CapFault, FaultKind};
pub use otype::Otype;
pub use perms::Perms;
