//! Capability fault types.

use crate::Perms;
use core::fmt;
use serde::{Deserialize, Serialize};

/// The reason a capability check failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The capability's validity tag is clear (forged, corrupted, or
    /// overwritten by plain data).
    TagViolation,
    /// The capability is sealed and the operation requires an unsealed one.
    SealViolation,
    /// A required permission bit is missing.
    PermissionViolation {
        /// The permissions the operation required.
        required: Perms,
    },
    /// The access fell outside the capability's bounds.
    BoundsViolation,
    /// An exact-bounds request was not representable in the compressed
    /// encoding.
    RepresentabilityLoss,
    /// A monotonicity violation: the derived capability would have wider
    /// bounds or more permissions than its parent.
    MonotonicityViolation,
    /// The object types did not match during seal/unseal.
    OtypeMismatch,
}

/// A capability violation fault, as raised by Morello hardware when a
/// checked operation fails.
///
/// Carries the faulting cursor address and access footprint so the
/// simulator's trap path (and tests) can report precisely what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapFault {
    /// Why the check failed.
    pub kind: FaultKind,
    /// The address the faulting operation targeted.
    pub address: u64,
    /// The footprint of the faulting access in bytes (0 for non-memory ops).
    pub size: u64,
}

impl CapFault {
    /// Creates a fault for a non-memory operation (seal, bounds-set, …).
    pub fn op(kind: FaultKind, address: u64) -> CapFault {
        CapFault {
            kind,
            address,
            size: 0,
        }
    }
}

impl fmt::Display for CapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::TagViolation => write!(f, "tag violation at {:#x}", self.address),
            FaultKind::SealViolation => write!(f, "seal violation at {:#x}", self.address),
            FaultKind::PermissionViolation { required } => {
                write!(
                    f,
                    "permission violation at {:#x} (requires {required})",
                    self.address
                )
            }
            FaultKind::BoundsViolation => write!(
                f,
                "bounds violation at {:#x} (+{} bytes)",
                self.address, self.size
            ),
            FaultKind::RepresentabilityLoss => {
                write!(f, "unrepresentable bounds at {:#x}", self.address)
            }
            FaultKind::MonotonicityViolation => {
                write!(f, "monotonicity violation at {:#x}", self.address)
            }
            FaultKind::OtypeMismatch => write!(f, "otype mismatch at {:#x}", self.address),
        }
    }
}

impl std::error::Error for CapFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let f = CapFault {
            kind: FaultKind::BoundsViolation,
            address: 0x1000,
            size: 8,
        };
        assert_eq!(f.to_string(), "bounds violation at 0x1000 (+8 bytes)");
        let f = CapFault::op(FaultKind::TagViolation, 0x20);
        assert_eq!(f.to_string(), "tag violation at 0x20");
    }

    #[test]
    fn error_trait_object() {
        let f: Box<dyn std::error::Error> = Box::new(CapFault::op(FaultKind::SealViolation, 0));
        assert!(f.to_string().contains("seal"));
    }
}
