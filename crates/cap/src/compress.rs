//! CHERI-Concentrate-style 128-bit compressed capability encoding.
//!
//! The bounds of a capability are stored as a floating-point-like pair of
//! truncated mantissas (`B`, `T`) relative to the 64-bit cursor address,
//! plus a shared exponent `E`. Small objects (< 4 KiB) are encoded exactly
//! with `E = 0`; larger objects steal the low bits of `B`/`T` for an
//! *internal exponent* and consequently require their bounds to be aligned
//! to `2^(E+3)` bytes. This alignment contract — exposed through
//! [`representable_alignment_mask`] and [`round_representable_length`] — is
//! what forces CHERI-aware allocators to pad large allocations, one of the
//! second-order effects the paper measures.
//!
//! The layout modelled here follows the published CHERI-Concentrate scheme
//! with a 14-bit bottom mantissa (the Morello configuration); see the CHERI
//! ISA specification (UCAM-CL-TR-987) for the silicon encoding.

use crate::{Capability, Otype, Perms};
use serde::{Deserialize, Serialize};

/// Width of the bottom-bound mantissa field in bits.
pub const BOT_WIDTH: u32 = 14;
/// Width of the explicitly stored top-bound mantissa field in bits.
pub const TOP_WIDTH: u32 = BOT_WIDTH - 2;
/// Exponent bits stolen from each of the `B` and `T` fields when the
/// internal exponent is in use.
pub const EXP_LOW_BITS: u32 = 3;
/// Largest encodable exponent: a length of `2^64` has its most significant
/// bit at position 64 and needs `E = 64 - (BOT_WIDTH - 2) = 52`.
pub const MAX_EXPONENT: u32 = 64 - (BOT_WIDTH - 2);

const MASK_BOT: u64 = (1 << BOT_WIDTH) - 1;
const MASK_TOP: u64 = (1 << TOP_WIDTH) - 1;
const MASK_64: u128 = u64::MAX as u128;
const MASK_65: u128 = (1u128 << 65) - 1;

// Metadata word layout (bit offsets within the high 64 bits).
const SHIFT_B: u32 = 0; // [13:0]
const SHIFT_T: u32 = 14; // [25:14]
const SHIFT_IE: u32 = 26; // [26]
const SHIFT_OTYPE: u32 = 27; // [41:27]
const SHIFT_PERMS: u32 = 48; // [59:48]

/// The in-memory form of a capability: 128 bits of data plus the
/// out-of-band validity tag.
///
/// This is exactly what the `cheri-mem` crate's tagged memory
/// stores: the two data words live in the 16-byte granule, the tag lives in
/// the tag table. Round-tripping through this type is lossless for any
/// capability whose bounds are representable (which every architecturally
/// constructed [`Capability`] guarantees).
///
/// ```
/// use cheri_cap::Capability;
/// let c = Capability::root_rw().set_bounds_exact(0x4000, 128).unwrap();
/// let cc = c.to_compressed();
/// assert_eq!(Capability::from_compressed(cc, true), c);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompressedCap {
    /// Metadata word: permissions, otype, and compressed bounds.
    pub meta: u64,
    /// The 64-bit cursor address.
    pub addr: u64,
}

impl CompressedCap {
    /// A compressed null capability (all bits zero).
    pub const NULL: CompressedCap = CompressedCap { meta: 0, addr: 0 };

    /// Reassembles the two data words into a little-endian 16-byte image
    /// (address word first, matching Morello's memory layout).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.addr.to_le_bytes());
        out[8..].copy_from_slice(&self.meta.to_le_bytes());
        out
    }

    /// Parses a 16-byte little-endian memory image.
    pub fn from_bytes(bytes: [u8; 16]) -> CompressedCap {
        let addr = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let meta = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
        CompressedCap { meta, addr }
    }
}

/// The unpacked bounds fields of the compressed format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BoundsFields {
    /// Exponent (0 ..= [`MAX_EXPONENT`]).
    pub e: u32,
    /// Internal-exponent flag.
    pub ie: bool,
    /// Bottom mantissa, `BOT_WIDTH` bits (low [`EXP_LOW_BITS`] zero if `ie`).
    pub b: u64,
    /// Top mantissa, `BOT_WIDTH` bits with the top two bits reconstructed.
    pub t: u64,
}

fn msb_index(v: u128) -> u32 {
    debug_assert!(v != 0);
    127 - v.leading_zeros()
}

/// Computes the bounds fields for `(base, top)`, if exactly representable.
pub(crate) fn exact_fields(base: u64, top: u128) -> Option<BoundsFields> {
    debug_assert!(top <= 1u128 << 64);
    let length = top.checked_sub(base as u128)?;
    if length < 1u128 << (BOT_WIDTH - 2) {
        // Small object: E = 0, no alignment requirement.
        return Some(BoundsFields {
            e: 0,
            ie: false,
            b: base & MASK_BOT,
            t: (top as u64) & MASK_BOT,
        });
    }
    let e = msb_index(length) - (BOT_WIDTH - 2);
    debug_assert!(e <= MAX_EXPONENT);
    let align = 1u128 << (e + EXP_LOW_BITS);
    if !(base as u128).is_multiple_of(align) || !top.is_multiple_of(align) {
        return None;
    }
    Some(BoundsFields {
        e,
        ie: true,
        b: (base >> e) & MASK_BOT,
        t: ((top >> e) as u64) & MASK_BOT,
    })
}

/// Decodes `(base, top)` from bounds fields and a cursor address.
pub(crate) fn decode_bounds(f: BoundsFields, addr: u64) -> (u64, u128) {
    let e = f.e.min(MAX_EXPONENT);
    let shift = e + BOT_WIDTH; // <= 66
    let a_mid = ((addr >> e) & MASK_BOT) as i128;
    let b = f.b as i128;
    let t = f.t as i128;
    // The representable region boundary: one quarter-span below B.
    let r = (f.b.wrapping_sub(1 << (BOT_WIDTH - 2)) & MASK_BOT) as i128;
    let reg = |x: i128| -> i128 { i128::from(x < r) };
    let c_b = reg(b) - reg(a_mid);
    let c_t = reg(t) - reg(a_mid);
    let a_top: i128 = if shift >= 64 {
        0
    } else {
        (addr >> shift) as i128
    };
    let base_i = ((a_top + c_b) << shift) + (b << e);
    let top_i = ((a_top + c_t) << shift) + (t << e);
    let base = (base_i as u128 & MASK_64) as u64;
    let top = top_i as u128 & MASK_65;
    (base, top)
}

/// Reconstructs the full 14-bit top mantissa from its stored 12 bits.
fn infer_top(b: u64, t_low: u64, ie: bool) -> u64 {
    let carry = u64::from((t_low & MASK_TOP) < (b & MASK_TOP));
    let t_hi = ((b >> TOP_WIDTH) + carry + u64::from(ie)) & 0b11;
    (t_hi << TOP_WIDTH) | (t_low & MASK_TOP)
}

/// Packs an architectural capability into the 128-bit format.
///
/// The capability's bounds must be exactly representable; every
/// [`Capability`] constructed through the public API maintains that
/// invariant.
pub(crate) fn pack(cap: &Capability) -> CompressedCap {
    let f = exact_fields(cap.base(), cap.top())
        .expect("architectural capabilities always have representable bounds");
    let (b_field, t_field) = if f.ie {
        let e = f.e as u64;
        (
            (f.b & !((1 << EXP_LOW_BITS) - 1)) | (e & 0b111),
            ((f.t & MASK_TOP) & !((1 << EXP_LOW_BITS) - 1)) | ((e >> EXP_LOW_BITS) & 0b111),
        )
    } else {
        (f.b, f.t & MASK_TOP)
    };
    let meta = (b_field << SHIFT_B)
        | (t_field << SHIFT_T)
        | (u64::from(f.ie) << SHIFT_IE)
        | (u64::from(cap.otype().raw()) << SHIFT_OTYPE)
        | (u64::from(cap.perms().bits()) << SHIFT_PERMS);
    CompressedCap {
        meta,
        addr: cap.address(),
    }
}

/// Unpacks a 128-bit image (any bit pattern) into an architectural
/// capability with the given tag.
pub(crate) fn unpack(cc: CompressedCap, tag: bool) -> Capability {
    let ie = (cc.meta >> SHIFT_IE) & 1 == 1;
    let b_field = (cc.meta >> SHIFT_B) & MASK_BOT;
    let t_field = (cc.meta >> SHIFT_T) & MASK_TOP;
    let (e, b, t_low) = if ie {
        let e = (((t_field & 0b111) << EXP_LOW_BITS) | (b_field & 0b111)) as u32;
        (e.min(MAX_EXPONENT), b_field & !0b111, t_field & !0b111)
    } else {
        (0, b_field, t_field)
    };
    let t = infer_top(b, t_low, ie);
    let (base, top) = decode_bounds(BoundsFields { e, ie, b, t }, cc.addr);
    let perms = Perms::from_bits_truncate(((cc.meta >> SHIFT_PERMS) & 0xFFF) as u32);
    let otype = Otype::from_raw(((cc.meta >> SHIFT_OTYPE) & 0x7FFF) as u16);
    Capability::from_raw_parts(tag, base, top, cc.addr, perms, otype)
}

/// Returns `true` when the cursor `addr` can be installed in a capability
/// with the given bounds without losing the ability to reconstruct them.
pub(crate) fn cursor_representable(base: u64, top: u128, addr: u64) -> bool {
    match exact_fields(base, top) {
        Some(f) => decode_bounds(f, addr) == (base, top),
        None => false,
    }
}

/// Rounds a requested region length up to the next representable length
/// (Morello's `CRRL` instruction).
///
/// Lengths below 4 KiB are always exact. Above that, the result is aligned
/// to the `2^(E+3)` granule implied by the internal exponent.
///
/// Like the hardware instruction, the result is a 64-bit register value:
/// a request that rounds up to the full `2^64` address space wraps to 0.
///
/// ```
/// use cheri_cap::round_representable_length;
/// assert_eq!(round_representable_length(100), 100);
/// assert_eq!(round_representable_length(1 << 20), 1 << 20);
/// // 1 MiB + 1 needs E = 8, so a 2 KiB granule:
/// assert_eq!(round_representable_length((1 << 20) + 1) % 2048, 0);
/// ```
pub fn round_representable_length(len: u64) -> u64 {
    if len < 1 << (BOT_WIDTH - 2) {
        return len;
    }
    let mut e = msb_index(len as u128) - (BOT_WIDTH - 2);
    loop {
        let align = 1u128 << (e + EXP_LOW_BITS);
        let rounded = ((len as u128) + align - 1) & !(align - 1);
        if msb_index(rounded) - (BOT_WIDTH - 2) == e {
            return rounded as u64;
        }
        e += 1;
    }
}

/// Returns the base-alignment mask required for a region of the given
/// length to be representable (Morello's `CRAM` instruction).
///
/// A CHERI-aware allocator aligns the allocation base with
/// `base & mask == base` and pads the size with
/// [`round_representable_length`].
///
/// ```
/// use cheri_cap::representable_alignment_mask;
/// assert_eq!(representable_alignment_mask(64), u64::MAX);
/// let m = representable_alignment_mask(1 << 20); // E = 8 -> 2 KiB granule
/// assert_eq!(!m + 1, 2048);
/// ```
pub fn representable_alignment_mask(len: u64) -> u64 {
    if len < 1 << (BOT_WIDTH - 2) {
        return u64::MAX;
    }
    let mut e = msb_index(len as u128) - (BOT_WIDTH - 2);
    // Rounding the length may carry into the next exponent; the mask must
    // cover the post-rounding exponent.
    let align = 1u128 << (e + EXP_LOW_BITS);
    let rounded = ((len as u128) + align - 1) & !(align - 1);
    if msb_index(rounded) - (BOT_WIDTH - 2) != e {
        e += 1;
    }
    !((1u64 << (e + EXP_LOW_BITS)) - 1)
}

/// Returns the base alignment, in bytes, required for a region of the
/// given length to be representable — the two's-complement of
/// [`representable_alignment_mask`], as an allocator would compute it.
///
/// Exactly-representable lengths need no alignment (the result is 1).
///
/// ```
/// use cheri_cap::representable_alignment;
/// assert_eq!(representable_alignment(64), 1);
/// assert_eq!(representable_alignment(1 << 20), 2048); // E = 8
/// ```
pub fn representable_alignment(len: u64) -> u64 {
    (!representable_alignment_mask(len)).wrapping_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: u64, top: u128, addr: u64) {
        let f = exact_fields(base, top).expect("representable");
        assert_eq!(
            decode_bounds(f, addr),
            (base, top),
            "decode mismatch for base={base:#x} top={top:#x} addr={addr:#x}"
        );
    }

    #[test]
    fn small_object_roundtrip() {
        roundtrip(0x1000, 0x1040, 0x1000);
        roundtrip(0x1000, 0x1040, 0x103f);
        roundtrip(
            0xffff_ffff_ffff_f000,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_f800,
        );
        roundtrip(0, 0, 0); // zero-length at zero
        roundtrip(0x7fff, 0x7fff, 0x7fff); // zero-length
    }

    #[test]
    fn cross_region_small_object() {
        // Object straddling a 2^14 boundary: corrections kick in.
        roundtrip(0x3ff0, 0x4010, 0x3ff0);
        roundtrip(0x3ff0, 0x4010, 0x400f);
    }

    #[test]
    fn full_address_space_root() {
        roundtrip(0, 1u128 << 64, 0);
        roundtrip(0, 1u128 << 64, u64::MAX);
        roundtrip(0, 1u128 << 64, 0xdead_beef_0000);
    }

    #[test]
    fn large_aligned_regions() {
        // 1 MiB at 1 MiB alignment: E = 8, granule 2 KiB.
        roundtrip(0x10_0000, 0x20_0000, 0x18_0000);
        // 1 GiB region.
        roundtrip(0x4000_0000, 0x8000_0000, 0x5000_0000);
    }

    #[test]
    fn unaligned_large_region_not_exact() {
        // 1 MiB length at an odd base: not representable exactly.
        assert!(exact_fields(0x10_0001, 0x20_0001).is_none());
    }

    #[test]
    fn round_length_monotonic_and_minimal() {
        assert_eq!(round_representable_length(0), 0);
        assert_eq!(round_representable_length(4095), 4095);
        assert_eq!(round_representable_length(4096), 4096);
        // 4097: E = 0 (ie), granule 8 -> rounds to 4104.
        assert_eq!(round_representable_length(4097), 4104);
        // Rounding past the top of the address space wraps to 0, matching
        // the 64-bit CRRL register semantics.
        assert_eq!(round_representable_length(u64::MAX), 0);
    }

    #[test]
    fn round_length_carry_into_next_exponent() {
        // A length just below a power of two whose rounding carries.
        let len = (1u64 << 20) - 1; // E = 7 granule 1024; rounds to 2^20 (msb stays 19? no: 2^20 has msb 20)
        let r = round_representable_length(len);
        assert!(r >= len);
        // The result must itself be exactly representable at base 0.
        assert!(exact_fields(0, r as u128).is_some());
    }

    #[test]
    fn alignment_mask_matches_roundtrip() {
        for len in [64u64, 4096, 5000, 1 << 16, (1 << 20) + 123, 1 << 30] {
            let mask = representable_alignment_mask(len);
            let rlen = round_representable_length(len);
            let base = 0x1234_5678_9abc_0000 & mask;
            assert!(
                exact_fields(base, base as u128 + rlen as u128).is_some(),
                "len={len} base={base:#x} rlen={rlen}"
            );
        }
    }

    #[test]
    fn compressed_byte_image_roundtrip() {
        let cc = CompressedCap {
            meta: 0x0123_4567_89ab_cdef,
            addr: 0xfedc_ba98_7654_3210,
        };
        assert_eq!(CompressedCap::from_bytes(cc.to_bytes()), cc);
        assert_eq!(CompressedCap::NULL.to_bytes(), [0u8; 16]);
    }

    #[test]
    fn unpack_arbitrary_bits_never_panics() {
        // Any 128-bit pattern must decode to *something* (untagged).
        for meta in [0u64, u64::MAX, 0x5555_5555_5555_5555, 0xaaaa_aaaa_aaaa_aaaa] {
            for addr in [0u64, u64::MAX, 0x8000_0000_0000_0000] {
                let c = unpack(CompressedCap { meta, addr }, false);
                assert!(!c.tag());
            }
        }
    }

    #[test]
    fn in_bounds_cursor_always_representable() {
        let cases: &[(u64, u128)] = &[
            (0x1000, 0x1000 + 64),
            (0x10_0000, 0x20_0000),
            (0, 1u128 << 64),
            (0x4000_0000, 0x4000_0000 + (1 << 16)),
        ];
        for &(base, top) in cases {
            for addr in [
                base,
                base + ((top as u64).wrapping_sub(base)) / 2,
                (top - 1) as u64,
            ] {
                assert!(
                    cursor_representable(base, top, addr),
                    "base={base:#x} top={top:#x} addr={addr:#x}"
                );
            }
        }
    }

    #[test]
    fn far_cursor_not_representable_for_small_object() {
        assert!(!cursor_representable(0x1000, 0x1040, 0x80_0000));
    }
}
