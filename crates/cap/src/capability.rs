//! The architectural capability type.

use crate::compress::{self, CompressedCap};
use crate::{CapFault, FaultKind, Otype, Perms};
use core::fmt;
use serde::{Deserialize, Serialize};

/// A CHERI capability: a tagged, bounded, permissioned fat pointer.
///
/// This is the *architectural* (uncompressed) view. Invariants maintained by
/// every public constructor and derivation method:
///
/// * `base <= top <= 2^64`;
/// * the `(base, top)` pair is exactly representable in the compressed
///   encoding (constructors round, or fault in `_exact` variants);
/// * derivation is monotonic — bounds only shrink, permissions only drop;
/// * a sealed capability cannot be dereferenced or modified.
///
/// The cursor [`address`](Capability::address) may legally move out of
/// bounds (C idioms rely on one-past-the-end and transient out-of-bounds
/// pointers); moving it far enough that the compressed bounds can no longer
/// be reconstructed clears the tag instead
/// ([`set_address`](Capability::set_address)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Capability {
    tag: bool,
    base: u64,
    top: u128,
    addr: u64,
    perms: Perms,
    otype: Otype,
}

impl Capability {
    /// The null capability: untagged, zero bounds, no permissions.
    pub fn null() -> Capability {
        Capability {
            tag: false,
            base: 0,
            top: 0,
            addr: 0,
            perms: Perms::NONE,
            otype: Otype::UNSEALED,
        }
    }

    /// The root read/write data capability covering the whole address space
    /// (what CheriBSD installs as the initial heap/stack authority).
    pub fn root_rw() -> Capability {
        Capability {
            tag: true,
            base: 0,
            top: 1u128 << 64,
            addr: 0,
            perms: Perms::DATA_RW,
            otype: Otype::UNSEALED,
        }
    }

    /// The root executable capability (the initial PCC authority).
    pub fn root_exec() -> Capability {
        Capability {
            tag: true,
            base: 0,
            top: 1u128 << 64,
            addr: 0,
            perms: Perms::CODE,
            otype: Otype::UNSEALED,
        }
    }

    /// The omnipotent root capability (all permissions).
    pub fn root_all() -> Capability {
        Capability {
            tag: true,
            base: 0,
            top: 1u128 << 64,
            addr: 0,
            perms: Perms::ALL,
            otype: Otype::UNSEALED,
        }
    }

    /// Reassembles a capability from raw parts without any representability
    /// normalisation. Used by the compressed decoder, which by construction
    /// produces representable bounds.
    pub(crate) fn from_raw_parts(
        tag: bool,
        base: u64,
        top: u128,
        addr: u64,
        perms: Perms,
        otype: Otype,
    ) -> Capability {
        Capability {
            tag,
            base,
            top,
            addr,
            perms,
            otype,
        }
    }

    // --- Getters ---------------------------------------------------------

    /// The validity tag. Untagged capabilities authorise nothing.
    #[inline]
    pub fn tag(&self) -> bool {
        self.tag
    }

    /// The inclusive lower bound.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The exclusive upper bound (up to `2^64`).
    #[inline]
    pub fn top(&self) -> u128 {
        self.top
    }

    /// `top - base` in bytes (saturating at 0 for malformed decodes).
    #[inline]
    pub fn length(&self) -> u64 {
        self.top
            .saturating_sub(self.base as u128)
            .min(u64::MAX as u128) as u64
    }

    /// The cursor address the capability currently points at.
    #[inline]
    pub fn address(&self) -> u64 {
        self.addr
    }

    /// The cursor's offset from base.
    #[inline]
    pub fn offset(&self) -> u64 {
        self.addr.wrapping_sub(self.base)
    }

    /// The permission set.
    #[inline]
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// The object type.
    #[inline]
    pub fn otype(&self) -> Otype {
        self.otype
    }

    /// Is the capability sealed (non-dereferenceable until unsealed)?
    #[inline]
    pub fn is_sealed(&self) -> bool {
        !self.otype.is_unsealed()
    }

    /// Is `[addr, addr + size)` within bounds?
    #[inline]
    pub fn is_in_bounds(&self, addr: u64, size: u64) -> bool {
        addr >= self.base && (addr as u128) + (size as u128) <= self.top
    }

    // --- Checks ----------------------------------------------------------

    /// Checks that this capability authorises an access of `size` bytes at
    /// `addr` with the given required permissions.
    ///
    /// # Errors
    ///
    /// Returns the precise [`CapFault`] the hardware would raise: tag, seal,
    /// permission, or bounds violation — checked in that order, matching the
    /// Morello fault priority.
    pub fn check_access(&self, addr: u64, size: u64, required: Perms) -> Result<(), CapFault> {
        if !self.tag {
            return Err(CapFault {
                kind: FaultKind::TagViolation,
                address: addr,
                size,
            });
        }
        if self.is_sealed() {
            return Err(CapFault {
                kind: FaultKind::SealViolation,
                address: addr,
                size,
            });
        }
        if !self.perms.contains(required) {
            return Err(CapFault {
                kind: FaultKind::PermissionViolation { required },
                address: addr,
                size,
            });
        }
        if !self.is_in_bounds(addr, size) {
            return Err(CapFault {
                kind: FaultKind::BoundsViolation,
                address: addr,
                size,
            });
        }
        Ok(())
    }

    /// Checks a load/store at the capability's own cursor.
    ///
    /// # Errors
    ///
    /// As [`check_access`](Capability::check_access).
    pub fn check_cursor_access(&self, size: u64, required: Perms) -> Result<(), CapFault> {
        self.check_access(self.addr, size, required)
    }

    /// Checks that the capability may be used as a jump target (PCC
    /// install): tagged, executable, cursor in bounds.
    ///
    /// # Errors
    ///
    /// As [`check_access`](Capability::check_access); sentry capabilities
    /// pass (they are unsealed by the branch), other sealed types fault.
    pub fn check_branch(&self) -> Result<(), CapFault> {
        if !self.tag {
            return Err(CapFault::op(FaultKind::TagViolation, self.addr));
        }
        if self.is_sealed() && !self.otype.is_sentry() {
            return Err(CapFault::op(FaultKind::SealViolation, self.addr));
        }
        if !self.perms.contains(Perms::EXECUTE) {
            return Err(CapFault::op(
                FaultKind::PermissionViolation {
                    required: Perms::EXECUTE,
                },
                self.addr,
            ));
        }
        if !self.is_in_bounds(self.addr, 4) {
            return Err(CapFault::op(FaultKind::BoundsViolation, self.addr));
        }
        Ok(())
    }

    // --- Derivation (monotonic) ------------------------------------------

    /// Narrows the bounds to `[base, base + len)`, rounding outward to the
    /// nearest representable bounds (Morello `SCBNDS`).
    ///
    /// The cursor moves to the new `base`.
    ///
    /// # Errors
    ///
    /// Faults on an untagged or sealed source, or when even the *rounded*
    /// bounds would escape the source bounds (monotonicity).
    pub fn set_bounds(&self, base: u64, len: u64) -> Result<Capability, CapFault> {
        self.set_bounds_impl(base, len, false)
    }

    /// Narrows the bounds to exactly `[base, base + len)` (Morello
    /// `SCBNDSE`).
    ///
    /// # Errors
    ///
    /// As [`set_bounds`](Capability::set_bounds), plus
    /// [`FaultKind::RepresentabilityLoss`] when the requested bounds cannot
    /// be encoded exactly. Use
    /// [`representable_alignment_mask`](crate::representable_alignment_mask)
    /// and
    /// [`round_representable_length`](crate::round_representable_length) to
    /// pre-align requests.
    pub fn set_bounds_exact(&self, base: u64, len: u64) -> Result<Capability, CapFault> {
        self.set_bounds_impl(base, len, true)
    }

    fn set_bounds_impl(&self, base: u64, len: u64, exact: bool) -> Result<Capability, CapFault> {
        if !self.tag {
            return Err(CapFault::op(FaultKind::TagViolation, base));
        }
        if self.is_sealed() {
            return Err(CapFault::op(FaultKind::SealViolation, base));
        }
        let req_top = base as u128 + len as u128;
        let (new_base, new_top) = match compress::exact_fields(base, req_top) {
            Some(_) => (base, req_top),
            None if exact => {
                return Err(CapFault::op(FaultKind::RepresentabilityLoss, base));
            }
            None => {
                // Round outward to representable bounds. Rounding the base
                // down and the top up can itself cross an exponent
                // boundary, so widen the granule until the result encodes.
                let mut mask = crate::representable_alignment_mask(len);
                loop {
                    let granule = (!mask as u128) + 1;
                    let b = base & mask;
                    let t = ((req_top + granule - 1) & !(granule - 1)).min(1u128 << 64);
                    if compress::exact_fields(b, t).is_some() {
                        break (b, t);
                    }
                    mask <<= 1;
                }
            }
        };
        if new_base < self.base || new_top > self.top {
            return Err(CapFault::op(FaultKind::MonotonicityViolation, base));
        }
        let mut out = *self;
        out.base = new_base;
        out.top = new_top;
        out.addr = base;
        debug_assert!(compress::exact_fields(out.base, out.top).is_some());
        Ok(out)
    }

    /// Moves the cursor to `addr`. If the new cursor is so far out of
    /// bounds that the compressed bounds could no longer be reconstructed,
    /// the tag is cleared (the CHERI representability rule) — no fault is
    /// raised, mirroring the hardware's `SCVALUE` behaviour.
    #[must_use]
    pub fn set_address(&self, addr: u64) -> Capability {
        let mut out = *self;
        out.addr = addr;
        if self.tag && !compress::cursor_representable(self.base, self.top, addr) {
            out.tag = false;
        }
        out
    }

    /// Adds a signed displacement to the cursor (pointer arithmetic).
    /// Subject to the same representability rule as
    /// [`set_address`](Capability::set_address).
    #[must_use]
    pub fn inc_address(&self, delta: i64) -> Capability {
        self.set_address(self.addr.wrapping_add(delta as u64))
    }

    /// Drops permissions to the intersection with `mask` (Morello
    /// `CLRPERM`-style monotonic restriction).
    ///
    /// # Errors
    ///
    /// Faults on an untagged or sealed source.
    pub fn and_perms(&self, mask: Perms) -> Result<Capability, CapFault> {
        if !self.tag {
            return Err(CapFault::op(FaultKind::TagViolation, self.addr));
        }
        if self.is_sealed() {
            return Err(CapFault::op(FaultKind::SealViolation, self.addr));
        }
        let mut out = *self;
        out.perms = self.perms.intersection(mask);
        Ok(out)
    }

    /// Seals this capability with the otype designated by `auth`'s cursor.
    ///
    /// # Errors
    ///
    /// Faults when either capability is untagged or sealed, when `auth`
    /// lacks [`Perms::SEAL`], or when `auth`'s cursor is not a valid otype
    /// within `auth`'s bounds.
    pub fn seal(&self, auth: &Capability) -> Result<Capability, CapFault> {
        if !self.tag || !auth.tag {
            return Err(CapFault::op(FaultKind::TagViolation, self.addr));
        }
        if self.is_sealed() || auth.is_sealed() {
            return Err(CapFault::op(FaultKind::SealViolation, self.addr));
        }
        if !auth.perms.contains(Perms::SEAL) {
            return Err(CapFault::op(
                FaultKind::PermissionViolation {
                    required: Perms::SEAL,
                },
                self.addr,
            ));
        }
        if !auth.is_in_bounds(auth.addr, 1) || auth.addr > u64::from(Otype::MAX) {
            return Err(CapFault::op(FaultKind::BoundsViolation, auth.addr));
        }
        let mut out = *self;
        out.otype = Otype::from_raw(auth.addr as u16);
        Ok(out)
    }

    /// Seals this capability as a sentry (sealed entry), the form used for
    /// return addresses and function pointers in the purecap ABI.
    ///
    /// # Errors
    ///
    /// Faults on an untagged or already-sealed source.
    pub fn seal_sentry(&self) -> Result<Capability, CapFault> {
        if !self.tag {
            return Err(CapFault::op(FaultKind::TagViolation, self.addr));
        }
        if self.is_sealed() {
            return Err(CapFault::op(FaultKind::SealViolation, self.addr));
        }
        let mut out = *self;
        out.otype = Otype::SENTRY;
        Ok(out)
    }

    /// Unseals a sealed capability using `auth`, whose cursor must match
    /// the sealed otype and which must carry [`Perms::UNSEAL`].
    ///
    /// # Errors
    ///
    /// Faults on tag/seal/permission violations or otype mismatch.
    pub fn unseal(&self, auth: &Capability) -> Result<Capability, CapFault> {
        if !self.tag || !auth.tag {
            return Err(CapFault::op(FaultKind::TagViolation, self.addr));
        }
        if !self.is_sealed() || auth.is_sealed() {
            return Err(CapFault::op(FaultKind::SealViolation, self.addr));
        }
        if !auth.perms.contains(Perms::UNSEAL) {
            return Err(CapFault::op(
                FaultKind::PermissionViolation {
                    required: Perms::UNSEAL,
                },
                self.addr,
            ));
        }
        if u64::from(self.otype.raw()) != auth.addr {
            return Err(CapFault::op(FaultKind::OtypeMismatch, self.addr));
        }
        let mut out = *self;
        out.otype = Otype::UNSEALED;
        Ok(out)
    }

    /// Unseals a sentry capability during a branch (`BLRS`-style implicit
    /// unseal). Returns `self` unchanged if not a sentry.
    #[must_use]
    pub fn unseal_sentry(&self) -> Capability {
        let mut out = *self;
        if out.otype.is_sentry() {
            out.otype = Otype::UNSEALED;
        }
        out
    }

    /// Returns a copy with the tag cleared (e.g. after a plain-data
    /// overwrite of part of the capability's memory granule).
    #[must_use]
    pub fn clear_tag(&self) -> Capability {
        let mut out = *self;
        out.tag = false;
        out
    }

    /// `CTESTSUBSET`: is this capability's authority entirely contained
    /// in `other`'s (bounds within bounds, permissions within
    /// permissions, both tagged, matching seal state)? The primitive
    /// revocation sweeps use to decide whether a stored capability was
    /// derived from a freed region.
    pub fn is_subset_of(&self, other: &Capability) -> bool {
        self.tag
            && other.tag
            && self.otype == other.otype
            && self.base >= other.base
            && self.top <= other.top
            && other.perms.contains(self.perms)
    }

    // --- Compression ------------------------------------------------------

    /// Packs into the in-memory 128-bit format. Lossless for every
    /// architecturally constructed capability.
    pub fn to_compressed(&self) -> CompressedCap {
        compress::pack(self)
    }

    /// Unpacks a 128-bit memory image (any bit pattern) with the given tag.
    pub fn from_compressed(cc: CompressedCap, tag: bool) -> Capability {
        compress::unpack(cc, tag)
    }
}

impl Default for Capability {
    fn default() -> Capability {
        Capability::null()
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cap{{{} {:#x} [{:#x},{:#x}) {} {:?}}}",
            if self.tag { "v" } else { "-" },
            self.addr,
            self.base,
            self.top,
            self.perms,
            self.otype
        )
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_cap(base: u64, len: u64) -> Capability {
        Capability::root_rw().set_bounds_exact(base, len).unwrap()
    }

    #[test]
    fn null_is_inert() {
        let n = Capability::null();
        assert!(!n.tag());
        assert_eq!(n.length(), 0);
        assert!(n.check_access(0, 1, Perms::LOAD).is_err());
        assert_eq!(Capability::default(), n);
    }

    #[test]
    fn root_covers_everything() {
        let r = Capability::root_rw();
        assert_eq!(r.base(), 0);
        assert_eq!(r.top(), 1u128 << 64);
        assert!(r
            .check_access(u64::MAX, 1, Perms::LOAD | Perms::STORE)
            .is_ok());
        assert!(r.check_access(0, 1, Perms::EXECUTE).is_err());
    }

    #[test]
    fn bounds_check_edges() {
        let c = heap_cap(0x1000, 64);
        assert!(c.check_access(0x1000, 64, Perms::LOAD).is_ok());
        assert!(c.check_access(0x103f, 1, Perms::LOAD).is_ok());
        assert_eq!(
            c.check_access(0x1040, 1, Perms::LOAD).unwrap_err().kind,
            FaultKind::BoundsViolation
        );
        assert_eq!(
            c.check_access(0xfff, 1, Perms::LOAD).unwrap_err().kind,
            FaultKind::BoundsViolation
        );
        assert_eq!(
            c.check_access(0x1000, 65, Perms::LOAD).unwrap_err().kind,
            FaultKind::BoundsViolation
        );
    }

    #[test]
    fn fault_priority_tag_seal_perm_bounds() {
        let c = heap_cap(0x1000, 64);
        let sealed = c.seal_sentry().unwrap();
        assert_eq!(
            sealed
                .check_access(0x1000, 8, Perms::LOAD)
                .unwrap_err()
                .kind,
            FaultKind::SealViolation
        );
        let untagged = sealed.clear_tag();
        assert_eq!(
            untagged
                .check_access(0x1000, 8, Perms::LOAD)
                .unwrap_err()
                .kind,
            FaultKind::TagViolation
        );
        assert!(matches!(
            c.check_access(0x2000, 8, Perms::EXECUTE).unwrap_err().kind,
            FaultKind::PermissionViolation { .. }
        ));
    }

    #[test]
    fn set_bounds_monotonic() {
        let c = heap_cap(0x1000, 4096);
        let inner = c.set_bounds_exact(0x1100, 64).unwrap();
        assert_eq!(inner.base(), 0x1100);
        assert_eq!(inner.length(), 64);
        // Escaping the parent faults.
        assert_eq!(
            c.set_bounds_exact(0x0800, 64).unwrap_err().kind,
            FaultKind::MonotonicityViolation
        );
        assert_eq!(
            c.set_bounds_exact(0x1000, 8192).unwrap_err().kind,
            FaultKind::MonotonicityViolation
        );
        // Derived caps can't regrow.
        assert_eq!(
            inner.set_bounds_exact(0x1000, 4096).unwrap_err().kind,
            FaultKind::MonotonicityViolation
        );
    }

    #[test]
    fn set_bounds_rounds_outward() {
        // An unrepresentable large request rounds, staying inside a
        // generous parent.
        let parent = heap_cap(0, 1 << 30);
        let c = parent.set_bounds(0x10_0001, (1 << 20) + 1).unwrap();
        assert!(c.base() <= 0x10_0001);
        assert!(c.top() > 0x10_0001 + (1 << 20));
        // Exact variant refuses.
        assert_eq!(
            parent
                .set_bounds_exact(0x10_0001, (1 << 20) + 1)
                .unwrap_err()
                .kind,
            FaultKind::RepresentabilityLoss
        );
    }

    #[test]
    fn set_address_in_bounds_keeps_tag() {
        let c = heap_cap(0x1000, 64);
        let moved = c.set_address(0x1030);
        assert!(moved.tag());
        assert_eq!(moved.address(), 0x1030);
        assert_eq!(moved.base(), c.base());
    }

    #[test]
    fn wild_set_address_clears_tag() {
        let c = heap_cap(0x1000, 64);
        let wild = c.set_address(0x8000_0000);
        assert!(!wild.tag());
        // but bounds fields were preserved in the struct for diagnostics
        assert_eq!(wild.address(), 0x8000_0000);
    }

    #[test]
    fn inc_address_pointer_arithmetic() {
        let c = heap_cap(0x1000, 64);
        let p = c.inc_address(16).inc_address(-8);
        assert!(p.tag());
        assert_eq!(p.address(), 0x1008);
        // One-past-the-end stays tagged (C idiom).
        let end = c.inc_address(64);
        assert!(end.tag());
        assert!(end.check_cursor_access(1, Perms::LOAD).is_err());
    }

    #[test]
    fn and_perms_drops_only() {
        let c = heap_cap(0x1000, 64);
        let ro = c
            .and_perms(Perms::LOAD | Perms::LOAD_CAP | Perms::EXECUTE)
            .unwrap();
        assert!(ro.perms().contains(Perms::LOAD));
        assert!(!ro.perms().contains(Perms::STORE));
        // EXECUTE wasn't in the source, so it can't appear.
        assert!(!ro.perms().contains(Perms::EXECUTE));
    }

    #[test]
    fn seal_unseal_cycle() {
        let c = heap_cap(0x1000, 64);
        let sealer = Capability::root_all()
            .set_bounds_exact(100, 16)
            .unwrap()
            .set_address(104);
        let sealed = c.seal(&sealer).unwrap();
        assert!(sealed.is_sealed());
        assert_eq!(sealed.otype().raw(), 104);
        // Sealed caps are frozen.
        assert!(sealed.set_bounds(0x1000, 32).is_err());
        assert!(sealed.and_perms(Perms::LOAD).is_err());
        // Wrong otype fails.
        let wrong = sealer.set_address(105);
        assert_eq!(
            sealed.unseal(&wrong).unwrap_err().kind,
            FaultKind::OtypeMismatch
        );
        let back = sealed.unseal(&sealer).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn sentry_branch_semantics() {
        let f = Capability::root_exec()
            .set_bounds_exact(0x4000, 1024)
            .unwrap()
            .seal_sentry()
            .unwrap();
        assert!(f.is_sealed());
        // A sentry may be branched to...
        assert!(f.check_branch().is_ok());
        // ...and is implicitly unsealed by the branch.
        assert!(!f.unseal_sentry().is_sealed());
        // A data capability cannot be branched to.
        assert!(heap_cap(0x1000, 64).check_branch().is_err());
    }

    #[test]
    fn subset_testing_matches_derivation() {
        let parent = heap_cap(0x1000, 4096);
        let child = parent.set_bounds_exact(0x1100, 64).unwrap();
        assert!(child.is_subset_of(&parent));
        assert!(!parent.is_subset_of(&child));
        assert!(parent.is_subset_of(&parent));
        // Dropping permissions keeps subset-ness; a sibling region is not
        // a subset.
        let ro = child.and_perms(Perms::LOAD).unwrap();
        assert!(ro.is_subset_of(&parent));
        let sibling = heap_cap(0x9000, 64);
        assert!(!sibling.is_subset_of(&parent));
        // Untagged or seal-mismatched capabilities are never subsets.
        assert!(!child.clear_tag().is_subset_of(&parent));
        assert!(!child.seal_sentry().unwrap().is_subset_of(&parent));
    }

    #[test]
    fn compressed_roundtrip_preserves_everything() {
        let c = heap_cap(0x1000, 64)
            .set_address(0x1020)
            .and_perms(Perms::LOAD | Perms::LOAD_CAP | Perms::GLOBAL)
            .unwrap();
        let rt = Capability::from_compressed(c.to_compressed(), true);
        assert_eq!(rt, c);
        let sealed = heap_cap(0x2000, 4096).seal_sentry().unwrap();
        assert_eq!(
            Capability::from_compressed(sealed.to_compressed(), true),
            sealed
        );
    }
}
