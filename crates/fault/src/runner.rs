//! Fault-aware run paths and run-outcome classification.
//!
//! [`FaultRunner`] mirrors the plain [`morello_sim::Runner`] but threads
//! a [`FaultSession`] through the interpreter, classifies what the
//! injection did to the run, and folds the four fault counters
//! (`FAULTS_INJECTED`, `FAULTS_TRAPPED`, `SILENT_CORRUPTIONS`,
//! `RECOVERY_UNWINDS`) into the statistics of every collection mode the
//! harness knows: direct, multiplexed, sampled, and profiled.
//!
//! Classification needs ground truth, so every fault run first executes
//! the program *clean* (functional interpreter only, no timing model)
//! and records the reference exit code. A run that completes with a
//! different exit and never trapped is a **silent corruption** — the
//! hybrid-ABI failure mode the paper's capability ABIs exist to close.

use crate::plan::FaultPlan;
use crate::session::{FaultSession, InjectionRecord};
use cheri_isa::{lower, Abi, Interp, InterpError, NullSink, Program, RunResult};
use cheri_workloads::Workload;
use morello_obs::{IntervalSample, IntervalSampler, Profiler, RegionProfile};
use morello_pmu::{DerivedMetrics, EventCounts, MultiplexedSession, PmuEvent};
use morello_sim::{fold_heap_stats, Platform, RunError};
use morello_uarch::{TimingCore, UarchStats};
use serde::{Deserialize, Serialize};

/// What an injection campaign did to one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// At least one capability fault reached the recovery handler — the
    /// corruption was *detected* (CheriBSD would have raised SIGPROT).
    Trapped,
    /// The run completed without a single trap but produced the wrong
    /// answer: the corruption flowed into the result undetected.
    SilentCorruption {
        /// The clean run's exit code.
        expected: u64,
        /// What the corrupted run returned instead.
        got: u64,
    },
    /// The run completed with the correct answer; the injected
    /// corruption was dead (overwritten or never consumed).
    Benign,
    /// The run died on a non-capability error (wild branch, fuel
    /// exhaustion from a corrupted loop bound, …) — detected by crash,
    /// not by the capability system.
    Crashed(String),
}

impl FaultOutcome {
    /// `true` for [`FaultOutcome::SilentCorruption`].
    pub fn is_silent(&self) -> bool {
        matches!(self, FaultOutcome::SilentCorruption { .. })
    }
}

/// The clean-reference facts classification is anchored on.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CleanReference {
    /// Exit code of the uninjected run.
    pub exit_code: u64,
    /// Retired instructions of the uninjected run — the campaign
    /// generator's trigger horizon.
    pub retired: u64,
}

/// A fault-injected direct run: classification, journal, and the same
/// counts/derived metrics a plain run produces (now carrying the fault
/// events).
#[derive(Clone, Debug, Serialize)]
pub struct FaultRun {
    /// Workload name.
    pub workload: String,
    /// The ABI run.
    pub abi: Abi,
    /// What the campaign did to the run.
    pub outcome: FaultOutcome,
    /// The clean run's exit code.
    pub expected_exit: u64,
    /// The injected run's exit code, when it completed.
    pub exit_code: Option<u64>,
    /// Full-run statistics with the fault counters folded in.
    pub stats: UarchStats,
    /// PMU event counts (46 events including the fault four).
    pub counts: EventCounts,
    /// Table 1 derived metrics plus fault coverage/silent-rate.
    pub derived: DerivedMetrics,
    /// Every injection that fired, in firing order.
    pub journal: Vec<InjectionRecord>,
}

/// A fault-injected sampled run (windowed PMU time-series).
#[derive(Clone, Debug, Serialize)]
pub struct FaultSampledRun {
    /// Workload name.
    pub workload: String,
    /// The ABI run.
    pub abi: Abi,
    /// Window length in cycles.
    pub window: u64,
    /// What the campaign did to the run.
    pub outcome: FaultOutcome,
    /// Full-run statistics with the fault counters folded in.
    pub stats: UarchStats,
    /// Per-window event deltas; run-total fault counters are credited
    /// to the last window, as with the allocator counters.
    pub samples: Vec<IntervalSample>,
    /// Every injection that fired, in firing order.
    pub journal: Vec<InjectionRecord>,
    /// The run ended early (abort-on-trap or crash): the time-series
    /// covers the executed prefix only.
    pub truncated: bool,
}

/// A fault-injected profiled run (cycle attribution by region).
#[derive(Clone, Debug, Serialize)]
pub struct FaultProfiledRun {
    /// Workload name.
    pub workload: String,
    /// The ABI run.
    pub abi: Abi,
    /// What the campaign did to the run.
    pub outcome: FaultOutcome,
    /// Full-run statistics with the fault counters folded in.
    pub stats: UarchStats,
    /// Per-region attribution covering the executed (possibly
    /// truncated) prefix.
    pub regions: Vec<RegionProfile>,
    /// Every injection that fired, in firing order.
    pub journal: Vec<InjectionRecord>,
    /// The run ended early (abort-on-trap or crash).
    pub truncated: bool,
}

/// Copies the session's counters into the run statistics — the bridge
/// that makes injections visible to the PMU model, mirroring
/// [`morello_sim::fold_heap_stats`] for the allocator.
pub fn fold_fault_stats(stats: &mut UarchStats, session: &FaultSession, silent: bool) {
    stats.faults_injected = session.injected();
    stats.faults_trapped = session.trapped_count();
    stats.recovery_unwinds = session.unwinds();
    stats.silent_corruptions = u64::from(silent);
}

/// Classifies a finished (or aborted) injected run against the clean
/// reference. Precedence: trapped beats everything (a trap *is*
/// detection even if recovery then produced a wrong answer), silent
/// corruption beats benign, non-capability errors are crashes.
fn classify(
    result: &Result<RunResult, InterpError>,
    session: &FaultSession,
    expected: u64,
) -> FaultOutcome {
    if session.trapped_count() > 0 {
        return FaultOutcome::Trapped;
    }
    match result {
        Ok(r) if r.exit_code != expected => FaultOutcome::SilentCorruption {
            expected,
            got: r.exit_code,
        },
        Ok(_) => FaultOutcome::Benign,
        Err(e @ InterpError::Fault { .. }) => {
            // Unreachable in practice: the handler counts the trap
            // before aborting. Kept so classification never lies if the
            // injector miscounts.
            let _ = e;
            FaultOutcome::Trapped
        }
        Err(e) => FaultOutcome::Crashed(e.to_string()),
    }
}

/// Runs workloads with fault plans over every collection mode.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultRunner {
    platform: Platform,
}

impl FaultRunner {
    /// Creates a fault runner for the platform.
    pub fn new(platform: Platform) -> FaultRunner {
        FaultRunner { platform }
    }

    /// The platform in force.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    fn lowered(&self, workload: &Workload, abi: Abi) -> Result<Program, RunError> {
        if !workload.supports(abi) {
            return Err(RunError::UnsupportedAbi {
                workload: workload.name.to_owned(),
                abi,
            });
        }
        Ok(lower(&workload.build(abi, self.platform.scale)))
    }

    /// Runs the program clean — functional interpreter only, no timing
    /// model — and returns the reference exit code and retired count.
    ///
    /// # Errors
    ///
    /// [`RunError::UnsupportedAbi`] for NA cells; [`RunError::Interp`]
    /// when the *uninjected* workload fails (a harness bug, not a
    /// campaign outcome).
    pub fn clean_reference(
        &self,
        workload: &Workload,
        abi: Abi,
    ) -> Result<CleanReference, RunError> {
        let prog = self.lowered(workload, abi)?;
        self.clean_reference_lowered(&prog)
    }

    fn clean_reference_lowered(&self, prog: &Program) -> Result<CleanReference, RunError> {
        let r = Interp::new(self.platform.interp).run(prog, &mut NullSink)?;
        Ok(CleanReference {
            exit_code: r.exit_code,
            retired: r.retired,
        })
    }

    /// The direct path: one injected run against the timing model.
    ///
    /// # Errors
    ///
    /// As [`clean_reference`](FaultRunner::clean_reference) — injected
    /// failures are *classified*, never returned as errors.
    pub fn run(
        &self,
        workload: &Workload,
        abi: Abi,
        plan: &FaultPlan,
    ) -> Result<FaultRun, RunError> {
        let prog = self.lowered(workload, abi)?;
        let clean = self.clean_reference_lowered(&prog)?;
        let mut session = FaultSession::new(plan);
        let mut core = TimingCore::new(self.platform.uarch);
        let result =
            Interp::new(self.platform.interp).run_with_faults(&prog, &mut core, &mut session);
        let mut stats = core.finish();
        if let Ok(r) = &result {
            fold_heap_stats(&mut stats, &r.heap_stats);
        }
        let outcome = classify(&result, &session, clean.exit_code);
        fold_fault_stats(&mut stats, &session, outcome.is_silent());
        let counts = EventCounts::from_uarch(&stats);
        Ok(FaultRun {
            workload: workload.name.to_owned(),
            abi,
            outcome,
            expected_exit: clean.exit_code,
            exit_code: result.as_ref().ok().map(|r| r.exit_code),
            stats,
            derived: DerivedMetrics::from_counts(&counts),
            counts,
            journal: session.into_journal(),
        })
    }

    /// The multiplexed path: the paper's counter-group scheme, re-running
    /// the injected workload once per PMU group with a fresh session
    /// each leg. Determinism makes every leg identical, so the merged
    /// counts are consistent and the returned journal (from the final
    /// leg) describes them all.
    ///
    /// # Errors
    ///
    /// As [`run`](FaultRunner::run).
    pub fn run_multiplexed(
        &self,
        workload: &Workload,
        abi: Abi,
        plan: &FaultPlan,
    ) -> Result<(FaultRun, usize), RunError> {
        let prog = self.lowered(workload, abi)?;
        let clean = self.clean_reference_lowered(&prog)?;
        let msession = MultiplexedSession::plan_full();
        let mut last: Option<(FaultSession, FaultOutcome, Option<u64>, UarchStats)> = None;
        let counts = msession.collect(|_group| {
            let mut session = FaultSession::new(plan);
            let mut core = TimingCore::new(self.platform.uarch);
            let result =
                Interp::new(self.platform.interp).run_with_faults(&prog, &mut core, &mut session);
            let mut stats = core.finish();
            if let Ok(r) = &result {
                fold_heap_stats(&mut stats, &r.heap_stats);
            }
            let outcome = classify(&result, &session, clean.exit_code);
            fold_fault_stats(&mut stats, &session, outcome.is_silent());
            let exit = result.as_ref().ok().map(|r| r.exit_code);
            last = Some((session, outcome, exit, stats));
            Ok::<_, RunError>(stats)
        })?;
        let (session, outcome, exit_code, stats) =
            last.expect("the plan always schedules at least one group");
        let runs = msession.required_runs();
        Ok((
            FaultRun {
                workload: workload.name.to_owned(),
                abi,
                outcome,
                expected_exit: clean.exit_code,
                exit_code,
                stats,
                derived: DerivedMetrics::from_counts(&counts),
                counts,
                journal: session.into_journal(),
            },
            runs,
        ))
    }

    /// The sampled path: windowed PMU collection of an injected run.
    /// Run-total fault counters are credited to the last window, as the
    /// plain sampler does for the allocator counters.
    ///
    /// # Errors
    ///
    /// As [`run`](FaultRunner::run).
    pub fn run_sampled(
        &self,
        workload: &Workload,
        abi: Abi,
        plan: &FaultPlan,
        window: u64,
    ) -> Result<FaultSampledRun, RunError> {
        let prog = self.lowered(workload, abi)?;
        let clean = self.clean_reference_lowered(&prog)?;
        let mut session = FaultSession::new(plan);
        let mut sampler = IntervalSampler::new(self.platform.uarch, window);
        let result =
            Interp::new(self.platform.interp).run_with_faults(&prog, &mut sampler, &mut session);
        let (mut stats, mut samples) = sampler.finish();
        if let Ok(r) = &result {
            fold_heap_stats(&mut stats, &r.heap_stats);
        }
        let outcome = classify(&result, &session, clean.exit_code);
        fold_fault_stats(&mut stats, &session, outcome.is_silent());
        if let Some(last) = samples.last_mut() {
            let full = EventCounts::from_uarch(&stats);
            for event in [
                PmuEvent::FaultsInjected,
                PmuEvent::FaultsTrapped,
                PmuEvent::SilentCorruptions,
                PmuEvent::RecoveryUnwinds,
            ] {
                last.counts.set(event, full.get(event));
            }
            last.derived = DerivedMetrics::from_counts(&last.counts);
        }
        Ok(FaultSampledRun {
            workload: workload.name.to_owned(),
            abi,
            window,
            outcome,
            stats,
            samples,
            journal: session.into_journal(),
            truncated: result.is_err(),
        })
    }

    /// The profiled path: cycle attribution by region over an injected
    /// run. A truncated run keeps the attribution of its executed
    /// prefix, so a campaign can see *where* execution was when the
    /// trap landed.
    ///
    /// # Errors
    ///
    /// As [`run`](FaultRunner::run).
    pub fn run_profiled(
        &self,
        workload: &Workload,
        abi: Abi,
        plan: &FaultPlan,
    ) -> Result<FaultProfiledRun, RunError> {
        let prog = self.lowered(workload, abi)?;
        let clean = self.clean_reference_lowered(&prog)?;
        let mut session = FaultSession::new(plan);
        let mut profiler = Profiler::new(self.platform.uarch, prog.regions.clone());
        let result =
            Interp::new(self.platform.interp).run_with_faults(&prog, &mut profiler, &mut session);
        let (mut stats, regions) = profiler.finish();
        if let Ok(r) = &result {
            fold_heap_stats(&mut stats, &r.heap_stats);
        }
        let outcome = classify(&result, &session, clean.exit_code);
        fold_fault_stats(&mut stats, &session, outcome.is_silent());
        Ok(FaultProfiledRun {
            workload: workload.name.to_owned(),
            abi,
            outcome,
            stats,
            regions,
            journal: session.into_journal(),
            truncated: result.is_err(),
        })
    }
}
