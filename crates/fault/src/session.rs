//! The per-run injection state machine: a [`FaultSession`] arms a
//! [`FaultPlan`]'s triggers and implements the interpreter's
//! [`FaultInjector`] hooks.
//!
//! Sessions are strictly deterministic: the interpreter polls at
//! architecturally defined points (instruction fetch, data access), the
//! first armed trigger whose site matches fires and disarms, and the
//! firing is journalled as an [`InjectionRecord`]. Re-running the same
//! plan against the same program yields a byte-identical journal — the
//! property the campaign engine's `--jobs` invariance rests on.

use crate::plan::{FaultKind, FaultPlan, Trigger};
use cheri_isa::{FaultInjector, InjectionKind, RecoveryPolicy};
use serde::{Deserialize, Serialize};

/// One journalled injection: which trigger fired, where, and what it
/// did. The `address` field holds the data effective address for memory
/// injections and the PC itself for PCC corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Index into the plan's trigger list.
    pub trigger: usize,
    /// The corruption applied.
    pub kind: FaultKind,
    /// Retired-instruction count at the firing poll.
    pub retired: u64,
    /// PC of the instruction the injection rode on.
    pub pc: u64,
    /// Effective address of the access (PC for PCC corruption).
    pub address: u64,
    /// Whether the access was a store (`false` for loads and fetches).
    pub is_store: bool,
}

/// Armed triggers plus the journal and counters of one run.
#[derive(Clone, Debug)]
pub struct FaultSession {
    policy: RecoveryPolicy,
    triggers: Vec<Trigger>,
    armed: Vec<bool>,
    live: usize,
    journal: Vec<InjectionRecord>,
    trapped: u64,
    unwinds: u64,
}

impl FaultSession {
    /// Arms every trigger of the plan.
    pub fn new(plan: &FaultPlan) -> FaultSession {
        FaultSession {
            policy: plan.policy,
            armed: vec![true; plan.triggers.len()],
            live: plan.triggers.len(),
            triggers: plan.triggers.clone(),
            journal: Vec::new(),
            trapped: 0,
            unwinds: 0,
        }
    }

    /// The injections that actually fired, in firing order.
    pub fn journal(&self) -> &[InjectionRecord] {
        &self.journal
    }

    /// Consumes the session, returning the journal.
    pub fn into_journal(self) -> Vec<InjectionRecord> {
        self.journal
    }

    /// Injections fired so far (== journal length).
    pub fn injected(&self) -> u64 {
        self.journal.len() as u64
    }

    /// Capability faults that reached the recovery handler. Counts every
    /// handled fault, so a single injection whose corruption keeps
    /// faulting under [`RecoveryPolicy::SkipFaultingOp`] counts once per
    /// re-trip — the analogue of a SIGPROT storm under a handler that
    /// keeps resuming.
    pub fn trapped_count(&self) -> u64 {
        self.trapped
    }

    /// Frames unwound by [`RecoveryPolicy::UnwindToCheckpoint`].
    pub fn unwinds(&self) -> u64 {
        self.unwinds
    }

    /// Fires trigger `i`, journalling the site.
    fn fire(&mut self, i: usize, retired: u64, pc: u64, address: u64, is_store: bool) {
        self.armed[i] = false;
        self.live -= 1;
        self.journal.push(InjectionRecord {
            trigger: i,
            kind: self.triggers[i].kind,
            retired,
            pc,
            address,
            is_store,
        });
    }
}

impl FaultInjector for FaultSession {
    fn active(&self) -> bool {
        self.live > 0
    }

    fn poll_pcc(&mut self, retired: u64, pc: u64) -> bool {
        let hit = self.triggers.iter().enumerate().find(|(i, t)| {
            self.armed[*i] && t.kind == FaultKind::PccCorrupt && t.site.matches_pcc(retired, pc)
        });
        match hit {
            Some((i, _)) => {
                self.fire(i, retired, pc, pc, false);
                true
            }
            None => false,
        }
    }

    fn poll_mem(
        &mut self,
        retired: u64,
        pc: u64,
        ea: u64,
        is_store: bool,
    ) -> Option<InjectionKind> {
        let hit = self.triggers.iter().enumerate().find(|(i, t)| {
            self.armed[*i] && t.kind != FaultKind::PccCorrupt && t.site.matches_mem(retired, pc, ea)
        });
        match hit {
            Some((i, t)) => {
                let kind = t.kind;
                self.fire(i, retired, pc, ea, is_store);
                Some(kind.to_injection())
            }
            None => None,
        }
    }

    fn trapped(&mut self, _pc: u64) {
        self.trapped += 1;
    }

    fn unwound(&mut self, _pc: u64) {
        self.unwinds += 1;
    }

    fn policy(&self) -> RecoveryPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TriggerSite;

    fn plan(triggers: Vec<Trigger>) -> FaultPlan {
        FaultPlan {
            seed: 0,
            triggers,
            policy: RecoveryPolicy::Abort,
        }
    }

    #[test]
    fn triggers_fire_once_and_disarm() {
        let p = plan(vec![Trigger {
            site: TriggerSite::AtRetired(10),
            kind: FaultKind::TagClear,
        }]);
        let mut s = FaultSession::new(&p);
        assert!(s.active());
        assert_eq!(s.poll_mem(5, 0x40, 0x1000, false), None);
        assert_eq!(
            s.poll_mem(10, 0x44, 0x1010, true),
            Some(InjectionKind::TagClear)
        );
        assert!(!s.active(), "single trigger fired, session goes inert");
        assert_eq!(s.poll_mem(11, 0x48, 0x1020, false), None);
        assert_eq!(s.injected(), 1);
        let r = s.journal()[0];
        assert_eq!(
            (r.trigger, r.retired, r.pc, r.address, r.is_store),
            (0, 10, 0x44, 0x1010, true)
        );
    }

    #[test]
    fn pcc_triggers_only_fire_at_fetch_polls() {
        let p = plan(vec![
            Trigger {
                site: TriggerSite::AtRetired(0),
                kind: FaultKind::PccCorrupt,
            },
            Trigger {
                site: TriggerSite::AtRetired(0),
                kind: FaultKind::PermDrop,
            },
        ]);
        let mut s = FaultSession::new(&p);
        // The mem poll skips the PCC trigger and fires the PermDrop one.
        assert_eq!(
            s.poll_mem(3, 0x10, 0x2000, false),
            Some(InjectionKind::PermDrop)
        );
        // The fetch poll fires the PCC trigger.
        assert!(s.poll_pcc(4, 0x14));
        assert!(!s.active());
        assert_eq!(s.journal()[1].address, 0x14, "PCC record holds the PC");
    }

    #[test]
    fn counters_track_handler_activity() {
        let p = plan(Vec::new());
        let mut s = FaultSession::new(&p);
        assert!(!s.active());
        s.trapped(0x40);
        s.trapped(0x44);
        s.unwound(0x44);
        assert_eq!(s.trapped_count(), 2);
        assert_eq!(s.unwinds(), 1);
    }
}
