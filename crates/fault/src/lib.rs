//! # morello-fault
//!
//! Deterministic fault injection and recovery for the Morello
//! reproduction: seeded [`FaultPlan`] campaigns arm triggers at
//! instruction counts, PC ranges, or address ranges and inject
//! capability corruptions (tag clears, bounds nudges, permission
//! drops, PCC corruption) into a running workload; a CheriBSD
//! SIGPROT-analogue recovery model
//! ([`RecoveryPolicy`](cheri_isa::RecoveryPolicy)) decides whether a
//! trapped run aborts, skips the faulting operation, or unwinds to the
//! caller; and every run is classified **trapped**, **silently
//! corrupted**, **benign**, or **crashed** against a clean reference
//! execution.
//!
//! The layer exists to measure the paper's central safety claim from
//! the performance side: under the purecap and benchmark ABIs a
//! corrupted capability is caught at its next use (≈100 % detection
//! coverage), while the hybrid ABI lets the same corruption flow into
//! the program's output as a silent wrong answer. The
//! [`run_coverage`] campaign sweeps injection rate × ABI × workload
//! and renders the comparison as the fig. 9 detection-coverage table.
//!
//! Everything is reproducible by construction: plans are drawn from
//! explicit seeds, injections ride on architecturally defined polls,
//! journals record every firing, and campaign aggregation is
//! scheduling-independent — `--jobs 1` and `--jobs 8` produce
//! byte-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod plan;
mod runner;
mod session;

pub use campaign::{
    coverage_table, plan_seed, run_coverage, CampaignConfig, CoverageCell, CoverageReport,
};
pub use plan::{FaultKind, FaultPlan, Trigger, TriggerSite};
pub use runner::{
    fold_fault_stats, CleanReference, FaultOutcome, FaultProfiledRun, FaultRun, FaultRunner,
    FaultSampledRun,
};
pub use session::{FaultSession, InjectionRecord};

// Re-exported so campaign drivers need not depend on `cheri-isa`
// directly for the policy knob.
pub use cheri_isa::RecoveryPolicy;
