//! Serde-configurable, PRNG-seeded fault-injection plans.
//!
//! A [`FaultPlan`] is the *entire* specification of a campaign run: the
//! seed it was drawn from, the list of armed [`Trigger`]s, and the
//! [`RecoveryPolicy`] in force. Plans are plain data — they can be
//! serialised into a journal, diffed between hosts, and re-hydrated into
//! a [`FaultSession`](crate::FaultSession) to reproduce a run
//! bit-for-bit. Nothing about a plan depends on scheduling: the same
//! seed always yields the same triggers, regardless of `--jobs`.

use cheri_isa::{InjectionKind, RecoveryPolicy};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Where a trigger arms: the three trigger-site families of the issue —
/// instruction counts, PC ranges, and effective-address ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerSite {
    /// Fires at the first eligible poll once at least this many
    /// instructions have retired.
    AtRetired(u64),
    /// Fires at the first eligible poll whose PC lies in `[lo, hi)`.
    PcRange {
        /// Inclusive lower PC bound.
        lo: u64,
        /// Exclusive upper PC bound.
        hi: u64,
    },
    /// Fires at the first data access whose effective address lies in
    /// `[lo, hi)`. Never matches PCC corruption (which has no data
    /// address).
    AddrRange {
        /// Inclusive lower address bound.
        lo: u64,
        /// Exclusive upper address bound.
        hi: u64,
    },
}

impl TriggerSite {
    /// Whether a data access at (`retired`, `pc`, `ea`) matches.
    pub fn matches_mem(&self, retired: u64, pc: u64, ea: u64) -> bool {
        match *self {
            TriggerSite::AtRetired(n) => retired >= n,
            TriggerSite::PcRange { lo, hi } => lo <= pc && pc < hi,
            TriggerSite::AddrRange { lo, hi } => lo <= ea && ea < hi,
        }
    }

    /// Whether an instruction fetch at (`retired`, `pc`) matches.
    /// Address ranges never match — there is no data address.
    pub fn matches_pcc(&self, retired: u64, pc: u64) -> bool {
        match *self {
            TriggerSite::AtRetired(n) => retired >= n,
            TriggerSite::PcRange { lo, hi } => lo <= pc && pc < hi,
            TriggerSite::AddrRange { .. } => false,
        }
    }
}

/// What corruption a trigger injects — the serde mirror of
/// [`cheri_isa::InjectionKind`], kept separate so plans round-trip
/// through JSON without the interpreter crate needing serde on its
/// internal enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Clear the capability tag of the base register (hybrid: nudge the
    /// raw pointer — the corruption a tag would have caught).
    TagClear,
    /// Move the address just past the upper bound plus `delta`.
    BoundsNudge {
        /// Extra displacement beyond the upper bound.
        delta: u64,
    },
    /// Drop load/store permissions from the base capability.
    PermDrop,
    /// Corrupt the program counter capability at an instruction fetch.
    PccCorrupt,
}

impl FaultKind {
    /// The interpreter-side injection this plan-side kind requests.
    pub fn to_injection(self) -> InjectionKind {
        match self {
            FaultKind::TagClear => InjectionKind::TagClear,
            FaultKind::BoundsNudge { delta } => InjectionKind::BoundsNudge { delta },
            FaultKind::PermDrop => InjectionKind::PermDrop,
            FaultKind::PccCorrupt => InjectionKind::PccCorrupt,
        }
    }
}

/// One armed injection: a site and the corruption to apply there. Each
/// trigger fires at most once per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trigger {
    /// Where the trigger fires.
    pub site: TriggerSite,
    /// What it injects.
    pub kind: FaultKind,
}

/// A complete, reproducible injection campaign for one run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the triggers were drawn from (recorded for the journal;
    /// the triggers themselves are already materialised).
    pub seed: u64,
    /// The armed triggers, in arming order.
    pub triggers: Vec<Trigger>,
    /// Fault disposition for the run.
    pub policy: RecoveryPolicy,
}

impl FaultPlan {
    /// An empty plan: no triggers, the given policy. Useful as a
    /// baseline cell in sweeps.
    pub fn empty(policy: RecoveryPolicy) -> FaultPlan {
        FaultPlan {
            seed: 0,
            triggers: Vec::new(),
            policy,
        }
    }

    /// Draws `n` tag-clear triggers at seeded instruction counts within
    /// the first half of `horizon` retired instructions (see
    /// [`campaign`](FaultPlan::campaign)).
    pub fn tag_clear_campaign(seed: u64, n: usize, horizon: u64) -> FaultPlan {
        FaultPlan::campaign(
            seed,
            &[FaultKind::TagClear],
            n,
            horizon,
            RecoveryPolicy::SkipFaultingOp,
        )
    }

    /// Draws `n` triggers with kinds cycled from `kinds` at seeded
    /// instruction counts in `[1, horizon/2]`. `horizon` should be the
    /// retired-instruction count of the *shortest* clean run across the
    /// ABIs that will execute the plan, so every trigger point is
    /// reachable under every ABI (capability ABIs retire at least as
    /// many instructions as hybrid for the same workload).
    ///
    /// # Panics
    ///
    /// Panics when `kinds` is empty and `n > 0`.
    pub fn campaign(
        seed: u64,
        kinds: &[FaultKind],
        n: usize,
        horizon: u64,
        policy: RecoveryPolicy,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let hi = (horizon / 2).max(1);
        let mut points: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=hi)).collect();
        points.sort_unstable();
        let triggers = points
            .into_iter()
            .enumerate()
            .map(|(i, at)| Trigger {
                site: TriggerSite::AtRetired(at),
                kind: kinds[i % kinds.len()],
            })
            .collect();
        FaultPlan {
            seed,
            triggers,
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::tag_clear_campaign(42, 8, 100_000);
        let b = FaultPlan::tag_clear_campaign(42, 8, 100_000);
        assert_eq!(a, b);
        let c = FaultPlan::tag_clear_campaign(43, 8, 100_000);
        assert_ne!(a, c, "different seeds must draw different points");
    }

    #[test]
    fn trigger_points_stay_within_half_the_horizon() {
        let p = FaultPlan::tag_clear_campaign(7, 64, 10_000);
        assert_eq!(p.triggers.len(), 64);
        for t in &p.triggers {
            match t.site {
                TriggerSite::AtRetired(n) => assert!((1..=5_000).contains(&n)),
                _ => panic!("campaign draws AtRetired sites only"),
            }
        }
    }

    #[test]
    fn kinds_cycle_through_the_mix() {
        let kinds = [
            FaultKind::TagClear,
            FaultKind::BoundsNudge { delta: 32 },
            FaultKind::PermDrop,
        ];
        let p = FaultPlan::campaign(1, &kinds, 6, 1_000, RecoveryPolicy::Abort);
        let drawn: Vec<FaultKind> = p.triggers.iter().map(|t| t.kind).collect();
        for k in kinds {
            assert!(drawn.contains(&k), "missing {k:?}");
        }
    }

    #[test]
    fn plans_round_trip_through_json() {
        let p = FaultPlan::campaign(
            9,
            &[FaultKind::PccCorrupt, FaultKind::PermDrop],
            4,
            50_000,
            RecoveryPolicy::UnwindToCheckpoint,
        );
        let s = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn site_matching_semantics() {
        let at = TriggerSite::AtRetired(100);
        assert!(!at.matches_mem(99, 0, 0));
        assert!(at.matches_mem(100, 0, 0));
        assert!(at.matches_pcc(250, 7));

        let pc = TriggerSite::PcRange { lo: 10, hi: 20 };
        assert!(pc.matches_mem(0, 10, 999));
        assert!(!pc.matches_mem(0, 20, 999));
        assert!(pc.matches_pcc(0, 19));

        let addr = TriggerSite::AddrRange {
            lo: 0x1000,
            hi: 0x2000,
        };
        assert!(addr.matches_mem(0, 0, 0x1000));
        assert!(!addr.matches_mem(0, 0, 0x2000));
        assert!(
            !addr.matches_pcc(u64::MAX, 0x1800),
            "no data address at a fetch"
        );
    }
}
