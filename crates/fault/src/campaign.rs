//! Detection-coverage campaigns: injection rate × ABI × workload sweeps
//! over the parallel cell engine, aggregated into the fig. 9 table.
//!
//! The campaign is deterministic end to end. Per-cell plan seeds are
//! derived from the campaign seed and the cell's *coordinates*
//! (workload key, rate, trial) — never from scheduling — and cells are
//! aggregated in canonical order, so the report is byte-identical
//! across `--jobs` settings; CI locks this by diffing a `--jobs 1` run
//! against a `--jobs 4` run.

use crate::plan::FaultPlan;
use crate::runner::{FaultOutcome, FaultRunner};
use cheri_isa::{Abi, RecoveryPolicy};
use cheri_workloads::Workload;
use morello_pmu::{fmt_metric, Table};
use morello_sim::engine::{run_cells, CellOutcome};
use morello_sim::{Platform, RunError, Watchdog};
use serde::{Deserialize, Serialize};

/// Campaign shape: seed, injection rates, trials per cell, disposition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Root seed; every cell derives its plan seed from this and its
    /// coordinates.
    pub seed: u64,
    /// Injection rates swept, in faults per million clean-run retired
    /// instructions (of the cell's shortest-ABI run).
    pub rates_per_million: Vec<u64>,
    /// Independent seeded trials per (workload, rate, ABI) cell.
    pub trials: u32,
    /// Fault disposition for every injected run.
    pub policy: RecoveryPolicy,
    /// Worker threads for the cell fan-out. Scheduling never influences
    /// the results, so it is not part of the serialised artefact — the
    /// CI `--jobs 1` vs `--jobs 4` diff depends on that.
    #[serde(skip)]
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0x5EED_FA17,
            rates_per_million: vec![50, 200, 800],
            trials: 3,
            // Skip-and-continue keeps capability ABIs running past the
            // first trap, so every armed trigger gets its chance to
            // fire — the densest version of the coverage experiment.
            policy: RecoveryPolicy::SkipFaultingOp,
            jobs: 1,
        }
    }
}

/// One aggregated table cell: a (workload, rate, ABI) coordinate summed
/// over the campaign's trials.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageCell {
    /// Workload name.
    pub workload: String,
    /// Workload key.
    pub key: String,
    /// The ABI run.
    pub abi: Abi,
    /// Injection rate in faults per million instructions.
    pub rate_per_million: u64,
    /// Trials aggregated.
    pub runs: u32,
    /// Total injections fired across the trials.
    pub injected: u64,
    /// Runs classified trapped.
    pub trapped_runs: u32,
    /// Runs classified silently corrupted.
    pub silent_runs: u32,
    /// Runs classified benign.
    pub benign_runs: u32,
    /// Runs that crashed on a non-capability error (including panicked
    /// workers, surfaced here instead of tearing the campaign down).
    pub crashed_runs: u32,
}

impl CoverageCell {
    /// Share of runs with at least one fired injection that trapped —
    /// the detection-coverage headline. Runs where nothing fired are
    /// excluded: there was nothing to detect.
    pub fn trap_coverage(&self) -> f64 {
        let eligible = self.runs - self.quiet_runs();
        if eligible == 0 {
            return 0.0;
        }
        f64::from(self.trapped_runs) / f64::from(eligible)
    }

    /// Share of all runs that completed with a wrong answer undetected.
    pub fn silent_rate(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        f64::from(self.silent_runs) / f64::from(self.runs)
    }

    fn quiet_runs(&self) -> u32 {
        // Benign runs with zero injections never armed anything; the
        // aggregation counts them via `injected == 0` only when *no*
        // trial fired, which at the swept rates does not occur — kept
        // for the rate-0 baseline cells a caller may add.
        if self.injected == 0 {
            self.runs
        } else {
            0
        }
    }
}

/// A full campaign result: configuration echo plus the aggregated cells
/// in canonical (workload, rate, ABI) order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageReport {
    /// The configuration that produced the report.
    pub config: CampaignConfig,
    /// Aggregated cells, workload-major, then rate, then ABI in
    /// `Abi::ALL` order.
    pub cells: Vec<CoverageCell>,
}

/// splitmix64 — the standard 64-bit seed scrambler.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-cell plan seed: campaign seed scrambled with the cell's
/// coordinates. Deliberately independent of the ABI so the *same plan*
/// meets all three ABIs — the comparison the coverage table makes.
pub fn plan_seed(campaign_seed: u64, key: &str, rate_per_million: u64, trial: u32) -> u64 {
    let mut h = mix(campaign_seed);
    for b in key.bytes() {
        h = mix(h ^ u64::from(b));
    }
    h = mix(h ^ rate_per_million);
    mix(h ^ u64::from(trial))
}

/// Runs the detection-coverage campaign: for every workload, a clean
/// per-ABI reference fixes the trigger horizon (the shortest supported
/// ABI's retired count), then every (rate, trial, ABI) cell runs a
/// seeded tag-clear plan through the parallel cell engine and is
/// aggregated in canonical order.
///
/// # Errors
///
/// Fails only if a *clean* reference run fails (a harness bug);
/// injected-run failures are classified into the table.
pub fn run_coverage(
    platform: &Platform,
    workloads: &[Workload],
    config: &CampaignConfig,
) -> Result<CoverageReport, RunError> {
    let runner = FaultRunner::new(*platform);

    // Phase 0: clean references. The horizon is the minimum retired
    // count across the workload's supported ABIs, so every trigger
    // point is reachable under every ABI.
    let mut horizons: Vec<u64> = Vec::with_capacity(workloads.len());
    let supported: Vec<Vec<Abi>> = workloads
        .iter()
        .map(|w| {
            Abi::ALL
                .iter()
                .copied()
                .filter(|a| w.supports(*a))
                .collect()
        })
        .collect();
    for (w, abis) in workloads.iter().zip(&supported) {
        let mut horizon = u64::MAX;
        for abi in abis {
            horizon = horizon.min(runner.clean_reference(w, *abi)?.retired);
        }
        horizons.push(horizon);
    }

    // Phase 1: the injection cells, canonical order (workload-major,
    // then rate, then trial, then ABI).
    struct Cell {
        w: usize,
        rate: u64,
        trial: u32,
        abi: Abi,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for (w, abis) in (0..workloads.len()).zip(&supported) {
        for &rate in &config.rates_per_million {
            for trial in 0..config.trials {
                for &abi in abis {
                    cells.push(Cell {
                        w,
                        rate,
                        trial,
                        abi,
                    });
                }
            }
        }
    }
    let outcomes = run_cells(cells.len(), config.jobs, |i| {
        let cell = &cells[i];
        let w = &workloads[cell.w];
        let horizon = horizons[cell.w];
        let n = ((cell.rate.saturating_mul(horizon)) / 1_000_000).max(1) as usize;
        let mut plan = FaultPlan::tag_clear_campaign(
            plan_seed(config.seed, w.key, cell.rate, cell.trial),
            n,
            horizon,
        );
        plan.policy = config.policy;
        // Fuel watchdog: a nudged hybrid pointer can corrupt a loop
        // bound into a near-infinite spin. Cap injected runs at a
        // generous multiple of the clean horizon; a run that blows it
        // classifies as crashed (detected by watchdog, not by the
        // capability system) instead of stalling the campaign.
        let watchdog = Watchdog::budgeted(horizon.saturating_mul(8).saturating_add(100_000));
        FaultRunner::new(watchdog.cap_platform(platform, 1)).run(w, cell.abi, &plan)
    });

    // Phase 2: aggregation, in cell order.
    let mut out: Vec<CoverageCell> = Vec::new();
    for (cell, outcome) in cells.iter().zip(outcomes) {
        let w = &workloads[cell.w];
        let slot = out
            .iter_mut()
            .find(|c| c.key == w.key && c.rate_per_million == cell.rate && c.abi == cell.abi);
        let slot = match slot {
            Some(s) => s,
            None => {
                out.push(CoverageCell {
                    workload: w.name.to_owned(),
                    key: w.key.to_owned(),
                    abi: cell.abi,
                    rate_per_million: cell.rate,
                    runs: 0,
                    injected: 0,
                    trapped_runs: 0,
                    silent_runs: 0,
                    benign_runs: 0,
                    crashed_runs: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        slot.runs += 1;
        match outcome {
            CellOutcome::Done(Ok(run)) => {
                slot.injected += run.journal.len() as u64;
                match run.outcome {
                    FaultOutcome::Trapped => slot.trapped_runs += 1,
                    FaultOutcome::SilentCorruption { .. } => slot.silent_runs += 1,
                    FaultOutcome::Benign => slot.benign_runs += 1,
                    FaultOutcome::Crashed(_) => slot.crashed_runs += 1,
                }
            }
            // UnsupportedAbi is filtered upfront; anything else — like a
            // panicked worker — degrades to a crashed run instead of
            // aborting the campaign.
            CellOutcome::Done(Err(_)) | CellOutcome::Panicked(_) => slot.crashed_runs += 1,
        }
    }
    Ok(CoverageReport {
        config: config.clone(),
        cells: out,
    })
}

/// Renders the fig. 9 detection-coverage table.
pub fn coverage_table(cells: &[CoverageCell]) -> Table {
    let mut t = Table::new(&[
        "Workload",
        "ABI",
        "Rate/M",
        "Runs",
        "Injected",
        "Trapped",
        "Silent",
        "Benign",
        "Crashed",
        "Coverage %",
        "Silent %",
    ]);
    for c in cells {
        t.row(&[
            c.workload.clone(),
            c.abi.to_string(),
            c.rate_per_million.to_string(),
            c.runs.to_string(),
            c.injected.to_string(),
            c.trapped_runs.to_string(),
            c.silent_runs.to_string(),
            c.benign_runs.to_string(),
            c.crashed_runs.to_string(),
            fmt_metric(c.trap_coverage() * 100.0),
            fmt_metric(c.silent_rate() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_seeds_depend_on_every_coordinate() {
        let base = plan_seed(1, "xz_557", 50, 0);
        assert_ne!(base, plan_seed(2, "xz_557", 50, 0));
        assert_ne!(base, plan_seed(1, "sqlite", 50, 0));
        assert_ne!(base, plan_seed(1, "xz_557", 200, 0));
        assert_ne!(base, plan_seed(1, "xz_557", 50, 1));
        assert_eq!(base, plan_seed(1, "xz_557", 50, 0), "pure function");
    }

    #[test]
    fn coverage_ratios() {
        let c = CoverageCell {
            workload: "w".into(),
            key: "w".into(),
            abi: Abi::Purecap,
            rate_per_million: 50,
            runs: 4,
            injected: 12,
            trapped_runs: 4,
            silent_runs: 0,
            benign_runs: 0,
            crashed_runs: 0,
        };
        assert!((c.trap_coverage() - 1.0).abs() < 1e-12);
        assert!(c.silent_rate().abs() < 1e-12);
    }
}
