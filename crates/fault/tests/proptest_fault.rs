//! Property tests for the detection-coverage contract: for *any* seeded
//! tag-clear plan that actually fires, the capability ABIs (purecap and
//! benchmark) classify **trapped** — never a wrong checksum — while the
//! hybrid ABI, fed the identical plan, never traps. Plus the
//! reproducibility half: re-running a plan yields an identical journal.

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_fault::{FaultOutcome, FaultPlan, FaultRunner};
use morello_sim::Platform;
use proptest::prelude::*;

const KEYS: [&str; 4] = ["omnetpp_520", "xz_557", "sqlite", "deepsjeng_531"];

fn runner() -> FaultRunner {
    let mut p = Platform::morello().with_scale(Scale::Test);
    // Watchdog for hybrid runaways (see fault_injection.rs).
    p.interp.max_insts = 4_000_000;
    FaultRunner::new(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The paper's safety contrast, as a property over random plans.
    #[test]
    fn capability_abis_trap_hybrid_never_does(
        wi in 0usize..KEYS.len(),
        seed in any::<u64>(),
        n in 1usize..6,
    ) {
        let runner = runner();
        let w = by_key(KEYS[wi]).expect("known workload");
        let horizon = Abi::ALL
            .iter()
            .filter(|a| w.supports(**a))
            .map(|a| runner.clean_reference(&w, *a).expect("clean run").retired)
            .min()
            .expect("at least one ABI");
        let plan = FaultPlan::tag_clear_campaign(seed, n, horizon);

        for abi in [Abi::Purecap, Abi::Benchmark] {
            if !w.supports(abi) {
                continue;
            }
            let r = runner.run(&w, abi, &plan).expect("fault run");
            if r.journal.is_empty() {
                continue; // nothing fired, nothing to detect
            }
            prop_assert_eq!(
                &r.outcome, &FaultOutcome::Trapped,
                "{:?} must trap on a fired tag clear (seed {})", abi, seed
            );
            prop_assert!(
                !r.outcome.is_silent(),
                "a capability ABI may never return a wrong checksum"
            );
            prop_assert!(r.stats.faults_trapped > 0);
        }

        let hybrid = runner.run(&w, Abi::Hybrid, &plan).expect("hybrid run");
        prop_assert!(
            hybrid.outcome != FaultOutcome::Trapped,
            "hybrid has no tags to trap on (seed {})", seed
        );
        prop_assert_eq!(hybrid.stats.faults_trapped, 0);
    }

    /// Reproducibility: a plan is a pure function of its seed, and a run
    /// is a pure function of its plan.
    #[test]
    fn plans_replay_to_identical_journals(seed in any::<u64>()) {
        let runner = runner();
        let w = by_key("omnetpp_520").expect("known workload");
        let horizon = runner
            .clean_reference(&w, Abi::Hybrid)
            .expect("clean run")
            .retired;
        let plan = FaultPlan::tag_clear_campaign(seed, 4, horizon);
        let replanned = FaultPlan::tag_clear_campaign(seed, 4, horizon);
        prop_assert_eq!(&plan, &replanned, "plans are pure functions of the seed");

        let a = runner.run(&w, Abi::Purecap, &plan).expect("first run");
        let b = runner.run(&w, Abi::Purecap, &plan).expect("second run");
        prop_assert_eq!(&a.journal, &b.journal, "journals replay bit-for-bit");
        prop_assert_eq!(&a.counts, &b.counts, "counts replay bit-for-bit");
        prop_assert_eq!(&a.outcome, &b.outcome);
    }
}
