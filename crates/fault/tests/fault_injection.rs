//! Integration tests for the fault-injection layer: reproducibility of
//! seeded campaigns, the detection-coverage contrast between the
//! capability ABIs and hybrid, and the fault counters flowing through
//! all four run paths.

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_fault::{
    run_coverage, CampaignConfig, FaultKind, FaultOutcome, FaultPlan, FaultRunner, RecoveryPolicy,
};
use morello_pmu::PmuEvent;
use morello_sim::Platform;

fn platform() -> Platform {
    let mut p = Platform::morello().with_scale(Scale::Test);
    // A nudged hybrid pointer can spin a loop towards the default
    // two-billion-instruction budget; test-scale clean runs retire well
    // under a million, so this watchdog keeps runaways sub-second while
    // never truncating a healthy run.
    p.interp.max_insts = 4_000_000;
    p
}

/// A dense tag-clear plan for `workload` sized off its own clean run.
fn tag_plan(runner: &FaultRunner, key: &str, seed: u64, n: usize) -> FaultPlan {
    let w = by_key(key).unwrap();
    let horizon = Abi::ALL
        .iter()
        .filter(|a| w.supports(**a))
        .map(|a| runner.clean_reference(&w, *a).unwrap().retired)
        .min()
        .unwrap();
    FaultPlan::tag_clear_campaign(seed, n, horizon)
}

#[test]
fn seeded_plans_reproduce_identical_journals() {
    let runner = FaultRunner::new(platform());
    let w = by_key("omnetpp_520").unwrap();
    let plan = tag_plan(&runner, "omnetpp_520", 0xDECAF, 6);
    let a = runner.run(&w, Abi::Purecap, &plan).unwrap();
    let b = runner.run(&w, Abi::Purecap, &plan).unwrap();
    assert!(!a.journal.is_empty(), "a dense plan must fire");
    assert_eq!(a.journal, b.journal, "same plan, same journal, bit for bit");
    assert_eq!(a.counts, b.counts, "and the same PMU counts");
    // A different seed must not reproduce the same firing sites.
    let other = tag_plan(&runner, "omnetpp_520", 0xBEEF, 6);
    let c = runner.run(&w, Abi::Purecap, &other).unwrap();
    assert_ne!(a.journal, c.journal);
}

#[test]
fn purecap_traps_where_hybrid_corrupts_silently() {
    let runner = FaultRunner::new(platform());
    let w = by_key("omnetpp_520").unwrap();
    // Several seeds so the property is not an accident of one draw.
    let mut hybrid_silent = 0;
    for seed in 0..6u64 {
        let plan = tag_plan(&runner, "omnetpp_520", seed, 4);
        let pure = runner.run(&w, Abi::Purecap, &plan).unwrap();
        let bench = runner.run(&w, Abi::Benchmark, &plan).unwrap();
        let hybrid = runner.run(&w, Abi::Hybrid, &plan).unwrap();
        if !pure.journal.is_empty() {
            assert_eq!(pure.outcome, FaultOutcome::Trapped, "seed {seed}");
            assert!(pure.stats.faults_trapped > 0);
        }
        if !bench.journal.is_empty() {
            assert_eq!(bench.outcome, FaultOutcome::Trapped, "seed {seed}");
        }
        // Hybrid has no tags to check: the same plan must never trap.
        assert_ne!(hybrid.outcome, FaultOutcome::Trapped, "seed {seed}");
        assert_eq!(hybrid.stats.faults_trapped, 0);
        if hybrid.outcome.is_silent() {
            hybrid_silent += 1;
        }
    }
    assert!(
        hybrid_silent > 0,
        "across six seeds, hybrid must show at least one silent corruption"
    );
}

#[test]
fn fault_counters_flow_through_all_four_run_paths() {
    let runner = FaultRunner::new(platform());
    let w = by_key("xz_557").unwrap();
    let plan = tag_plan(&runner, "xz_557", 7, 5);

    let direct = runner.run(&w, Abi::Purecap, &plan).unwrap();
    assert!(direct.counts.get(PmuEvent::FaultsInjected) > 0);
    assert!(direct.counts.get(PmuEvent::FaultsTrapped) > 0);
    assert!(direct.derived.fault_trap_coverage > 0.0);

    let (multi, legs) = runner.run_multiplexed(&w, Abi::Purecap, &plan).unwrap();
    assert!(legs >= 7, "full event set needs several legs");
    assert_eq!(
        multi.counts.get(PmuEvent::FaultsInjected),
        direct.counts.get(PmuEvent::FaultsInjected),
        "multiplexed legs are identical runs, so merged counts match direct"
    );
    assert_eq!(multi.journal, direct.journal);

    let sampled = runner.run_sampled(&w, Abi::Purecap, &plan, 10_000).unwrap();
    assert!(!sampled.samples.is_empty());
    assert_eq!(sampled.outcome, FaultOutcome::Trapped);
    let credited: u64 = sampled
        .samples
        .iter()
        .map(|s| s.counts.get(PmuEvent::FaultsInjected))
        .sum();
    assert_eq!(
        credited,
        direct.counts.get(PmuEvent::FaultsInjected),
        "run-total fault counters are credited to the last window once"
    );

    let profiled = runner.run_profiled(&w, Abi::Purecap, &plan).unwrap();
    assert_eq!(profiled.outcome, FaultOutcome::Trapped);
    assert_eq!(profiled.stats.faults_injected, direct.stats.faults_injected);
    assert_eq!(profiled.journal, direct.journal);
}

#[test]
fn abort_policy_ends_the_run_at_the_first_trap() {
    let runner = FaultRunner::new(platform());
    let w = by_key("omnetpp_520").unwrap();
    let mut plan = tag_plan(&runner, "omnetpp_520", 11, 8);
    plan.policy = RecoveryPolicy::Abort;
    let r = runner.run(&w, Abi::Purecap, &plan).unwrap();
    assert_eq!(r.outcome, FaultOutcome::Trapped);
    assert_eq!(r.exit_code, None, "aborted runs have no exit code");
    assert_eq!(r.stats.faults_trapped, 1, "abort stops at the first trap");
    // Sampled path: the truncated prefix is still observed.
    let s = runner.run_sampled(&w, Abi::Purecap, &plan, 10_000).unwrap();
    assert!(s.truncated);
    assert!(!s.samples.is_empty());
}

#[test]
fn unwind_policy_survives_and_counts_unwinds() {
    let runner = FaultRunner::new(platform());
    let w = by_key("omnetpp_520").unwrap();
    let mut plan = tag_plan(&runner, "omnetpp_520", 3, 4);
    plan.policy = RecoveryPolicy::UnwindToCheckpoint;
    let r = runner.run(&w, Abi::Purecap, &plan).unwrap();
    assert_eq!(r.outcome, FaultOutcome::Trapped);
    assert!(
        r.stats.recovery_unwinds > 0,
        "unwinding recovery must journal its frame pops"
    );
    assert_eq!(
        r.counts.get(PmuEvent::RecoveryUnwinds),
        r.stats.recovery_unwinds
    );
}

#[test]
fn coverage_report_is_byte_identical_across_jobs() {
    let platform = platform();
    let workloads = vec![by_key("xz_557").unwrap(), by_key("sqlite").unwrap()];
    let config = |jobs| CampaignConfig {
        seed: 0xC0FFEE,
        rates_per_million: vec![100, 400],
        trials: 2,
        policy: RecoveryPolicy::SkipFaultingOp,
        jobs,
    };
    let seq = run_coverage(&platform, &workloads, &config(1)).unwrap();
    let par = run_coverage(&platform, &workloads, &config(4)).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&seq).unwrap(),
        serde_json::to_string_pretty(&par).unwrap(),
        "campaign reports must not depend on scheduling"
    );
}

#[test]
fn coverage_contrast_purecap_full_hybrid_leaky() {
    let platform = platform();
    let workloads = vec![by_key("omnetpp_520").unwrap(), by_key("xz_557").unwrap()];
    let config = CampaignConfig {
        seed: 0x5EED,
        rates_per_million: vec![400],
        trials: 3,
        policy: RecoveryPolicy::SkipFaultingOp,
        jobs: 2,
    };
    let report = run_coverage(&platform, &workloads, &config).unwrap();
    let mut hybrid_silent = 0u32;
    for cell in &report.cells {
        assert_eq!(cell.runs, 3);
        assert!(cell.injected > 0, "dense campaigns fire in every cell");
        match cell.abi {
            Abi::Purecap | Abi::Benchmark => {
                assert_eq!(
                    cell.trapped_runs, cell.runs,
                    "{} {:?}: every capability-ABI run must trap",
                    cell.key, cell.abi
                );
                assert!((cell.trap_coverage() - 1.0).abs() < 1e-12);
                assert_eq!(cell.silent_runs, 0);
            }
            Abi::Hybrid => {
                assert_eq!(cell.trapped_runs, 0, "hybrid has nothing to trap on");
                hybrid_silent += cell.silent_runs;
            }
        }
    }
    assert!(
        hybrid_silent > 0,
        "the campaign must surface hybrid silent corruptions"
    );
}

#[test]
fn mixed_kind_plans_fire_and_classify() {
    let runner = FaultRunner::new(platform());
    let w = by_key("sqlite").unwrap();
    let horizon = runner.clean_reference(&w, Abi::Hybrid).unwrap().retired;
    let plan = FaultPlan::campaign(
        21,
        &[
            FaultKind::TagClear,
            FaultKind::BoundsNudge { delta: 64 },
            FaultKind::PermDrop,
        ],
        6,
        horizon,
        RecoveryPolicy::SkipFaultingOp,
    );
    let pure = runner.run(&w, Abi::Purecap, &plan).unwrap();
    assert!(!pure.journal.is_empty());
    assert_eq!(pure.outcome, FaultOutcome::Trapped);
    let hybrid = runner.run(&w, Abi::Hybrid, &plan).unwrap();
    assert_ne!(hybrid.outcome, FaultOutcome::Trapped);
}

#[test]
fn empty_plans_are_benign_and_cost_free() {
    let runner = FaultRunner::new(platform());
    let w = by_key("xz_557").unwrap();
    let plan = FaultPlan::empty(RecoveryPolicy::Abort);
    let faulted = runner.run(&w, Abi::Purecap, &plan).unwrap();
    assert_eq!(faulted.outcome, FaultOutcome::Benign);
    assert_eq!(faulted.stats.faults_injected, 0);
    // An inert injector must be bit-identical to the plain runner.
    let plain = morello_sim::Runner::new(*runner.platform())
        .run(&w, Abi::Purecap)
        .unwrap();
    assert_eq!(plain.counts, faulted.counts);
    assert_eq!(plain.exit_code, faulted.exit_code.unwrap());
}
