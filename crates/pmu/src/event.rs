//! The raw PMU events of the paper's Table 1.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A raw performance-monitoring event, named after its Arm PMU
/// counterpart.
///
/// `CpuCycles` lives on the fixed cycle counter; everything else competes
/// for the six configurable slots (see
/// [`PmuBank`](crate::PmuBank) and
/// [`MultiplexedSession`](crate::MultiplexedSession)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // names mirror the Arm PMU event mnemonics
pub enum PmuEvent {
    CpuCycles,
    InstRetired,
    StallFrontend,
    StallBackend,
    BrRetired,
    BrMisPredRetired,
    L1iCache,
    L1iCacheRefill,
    L1dCache,
    L1dCacheRefill,
    L2dCache,
    L2dCacheRefill,
    LlCacheRd,
    LlCacheMissRd,
    L1iTlb,
    L1iTlbRefill,
    L1dTlb,
    L1dTlbRefill,
    L2dTlb,
    L2dTlbRefill,
    ItlbWalk,
    DtlbWalk,
    InstSpec,
    LdSpec,
    StSpec,
    DpSpec,
    AseSpec,
    VfpSpec,
    BrImmedSpec,
    BrIndirectSpec,
    BrReturnSpec,
    CryptoSpec,
    MemAccessRd,
    MemAccessWr,
    CapMemAccessRd,
    CapMemAccessWr,
    MemAccessRdCtag,
    MemAccessWrCtag,
    SweepGranulesVisited,
    SweepTagsCleared,
    RevocationEpochs,
    QuarantineBytesHighWater,
    FaultsInjected,
    FaultsTrapped,
    SilentCorruptions,
    RecoveryUnwinds,
    OpcIntAluRetired,
    OpcIntAluCycles,
    OpcCapManipRetired,
    OpcCapManipCycles,
    OpcMemScalarRetired,
    OpcMemScalarCycles,
    OpcMemCapRetired,
    OpcMemCapCycles,
    OpcBranchRetired,
    OpcBranchCycles,
    OpcCapBranchRetired,
    OpcCapBranchCycles,
    OpcRuntimeRetired,
    OpcRuntimeCycles,
    OpcMetaRetired,
    OpcMetaCycles,
}

impl PmuEvent {
    /// Every event, in Table 1 order (simulator-only extensions follow
    /// the Table 1 set).
    pub const ALL: [PmuEvent; 62] = [
        PmuEvent::CpuCycles,
        PmuEvent::InstRetired,
        PmuEvent::StallFrontend,
        PmuEvent::StallBackend,
        PmuEvent::BrRetired,
        PmuEvent::BrMisPredRetired,
        PmuEvent::L1iCache,
        PmuEvent::L1iCacheRefill,
        PmuEvent::L1dCache,
        PmuEvent::L1dCacheRefill,
        PmuEvent::L2dCache,
        PmuEvent::L2dCacheRefill,
        PmuEvent::LlCacheRd,
        PmuEvent::LlCacheMissRd,
        PmuEvent::L1iTlb,
        PmuEvent::L1iTlbRefill,
        PmuEvent::L1dTlb,
        PmuEvent::L1dTlbRefill,
        PmuEvent::L2dTlb,
        PmuEvent::L2dTlbRefill,
        PmuEvent::ItlbWalk,
        PmuEvent::DtlbWalk,
        PmuEvent::InstSpec,
        PmuEvent::LdSpec,
        PmuEvent::StSpec,
        PmuEvent::DpSpec,
        PmuEvent::AseSpec,
        PmuEvent::VfpSpec,
        PmuEvent::BrImmedSpec,
        PmuEvent::BrIndirectSpec,
        PmuEvent::BrReturnSpec,
        PmuEvent::CryptoSpec,
        PmuEvent::MemAccessRd,
        PmuEvent::MemAccessWr,
        PmuEvent::CapMemAccessRd,
        PmuEvent::CapMemAccessWr,
        PmuEvent::MemAccessRdCtag,
        PmuEvent::MemAccessWrCtag,
        PmuEvent::SweepGranulesVisited,
        PmuEvent::SweepTagsCleared,
        PmuEvent::RevocationEpochs,
        PmuEvent::QuarantineBytesHighWater,
        PmuEvent::FaultsInjected,
        PmuEvent::FaultsTrapped,
        PmuEvent::SilentCorruptions,
        PmuEvent::RecoveryUnwinds,
        PmuEvent::OpcIntAluRetired,
        PmuEvent::OpcIntAluCycles,
        PmuEvent::OpcCapManipRetired,
        PmuEvent::OpcCapManipCycles,
        PmuEvent::OpcMemScalarRetired,
        PmuEvent::OpcMemScalarCycles,
        PmuEvent::OpcMemCapRetired,
        PmuEvent::OpcMemCapCycles,
        PmuEvent::OpcBranchRetired,
        PmuEvent::OpcBranchCycles,
        PmuEvent::OpcCapBranchRetired,
        PmuEvent::OpcCapBranchCycles,
        PmuEvent::OpcRuntimeRetired,
        PmuEvent::OpcRuntimeCycles,
        PmuEvent::OpcMetaRetired,
        PmuEvent::OpcMetaCycles,
    ];

    /// The Arm PMU mnemonic.
    pub const fn name(self) -> &'static str {
        match self {
            PmuEvent::CpuCycles => "CPU_CYCLES",
            PmuEvent::InstRetired => "INST_RETIRED",
            PmuEvent::StallFrontend => "STALL_FRONTEND",
            PmuEvent::StallBackend => "STALL_BACKEND",
            PmuEvent::BrRetired => "BR_RETIRED",
            PmuEvent::BrMisPredRetired => "BR_MIS_PRED_RETIRED",
            PmuEvent::L1iCache => "L1I_CACHE",
            PmuEvent::L1iCacheRefill => "L1I_CACHE_REFILL",
            PmuEvent::L1dCache => "L1D_CACHE",
            PmuEvent::L1dCacheRefill => "L1D_CACHE_REFILL",
            PmuEvent::L2dCache => "L2D_CACHE",
            PmuEvent::L2dCacheRefill => "L2D_CACHE_REFILL",
            PmuEvent::LlCacheRd => "LL_CACHE_RD",
            PmuEvent::LlCacheMissRd => "LL_CACHE_MISS_RD",
            PmuEvent::L1iTlb => "L1I_TLB",
            PmuEvent::L1iTlbRefill => "L1I_TLB_REFILL",
            PmuEvent::L1dTlb => "L1D_TLB",
            PmuEvent::L1dTlbRefill => "L1D_TLB_REFILL",
            PmuEvent::L2dTlb => "L2D_TLB",
            PmuEvent::L2dTlbRefill => "L2D_TLB_REFILL",
            PmuEvent::ItlbWalk => "ITLB_WALK",
            PmuEvent::DtlbWalk => "DTLB_WALK",
            PmuEvent::InstSpec => "INST_SPEC",
            PmuEvent::LdSpec => "LD_SPEC",
            PmuEvent::StSpec => "ST_SPEC",
            PmuEvent::DpSpec => "DP_SPEC",
            PmuEvent::AseSpec => "ASE_SPEC",
            PmuEvent::VfpSpec => "VFP_SPEC",
            PmuEvent::BrImmedSpec => "BR_IMMED_SPEC",
            PmuEvent::BrIndirectSpec => "BR_INDIRECT_SPEC",
            PmuEvent::BrReturnSpec => "BR_RETURN_SPEC",
            PmuEvent::CryptoSpec => "CRYPTO_SPEC",
            PmuEvent::MemAccessRd => "MEM_ACCESS_RD",
            PmuEvent::MemAccessWr => "MEM_ACCESS_WR",
            PmuEvent::CapMemAccessRd => "CAP_MEM_ACCESS_RD",
            PmuEvent::CapMemAccessWr => "CAP_MEM_ACCESS_WR",
            PmuEvent::MemAccessRdCtag => "MEM_ACCESS_RD_CTAG",
            PmuEvent::MemAccessWrCtag => "MEM_ACCESS_WR_CTAG",
            PmuEvent::SweepGranulesVisited => "SWEEP_GRANULES_VISITED",
            PmuEvent::SweepTagsCleared => "SWEEP_TAGS_CLEARED",
            PmuEvent::RevocationEpochs => "REVOCATION_EPOCHS",
            PmuEvent::QuarantineBytesHighWater => "QUARANTINE_BYTES_HWM",
            PmuEvent::FaultsInjected => "FAULTS_INJECTED",
            PmuEvent::FaultsTrapped => "FAULTS_TRAPPED",
            PmuEvent::SilentCorruptions => "SILENT_CORRUPTIONS",
            PmuEvent::RecoveryUnwinds => "RECOVERY_UNWINDS",
            PmuEvent::OpcIntAluRetired => "OPC_INT_ALU_RETIRED",
            PmuEvent::OpcIntAluCycles => "OPC_INT_ALU_CYCLES",
            PmuEvent::OpcCapManipRetired => "OPC_CAP_MANIP_RETIRED",
            PmuEvent::OpcCapManipCycles => "OPC_CAP_MANIP_CYCLES",
            PmuEvent::OpcMemScalarRetired => "OPC_MEM_SCALAR_RETIRED",
            PmuEvent::OpcMemScalarCycles => "OPC_MEM_SCALAR_CYCLES",
            PmuEvent::OpcMemCapRetired => "OPC_MEM_CAP_RETIRED",
            PmuEvent::OpcMemCapCycles => "OPC_MEM_CAP_CYCLES",
            PmuEvent::OpcBranchRetired => "OPC_BRANCH_RETIRED",
            PmuEvent::OpcBranchCycles => "OPC_BRANCH_CYCLES",
            PmuEvent::OpcCapBranchRetired => "OPC_CAP_BRANCH_RETIRED",
            PmuEvent::OpcCapBranchCycles => "OPC_CAP_BRANCH_CYCLES",
            PmuEvent::OpcRuntimeRetired => "OPC_RUNTIME_RETIRED",
            PmuEvent::OpcRuntimeCycles => "OPC_RUNTIME_CYCLES",
            PmuEvent::OpcMetaRetired => "OPC_META_RETIRED",
            PmuEvent::OpcMetaCycles => "OPC_META_CYCLES",
        }
    }

    /// What the event counts, per the Arm PMU reference and the paper's
    /// Table 1 notes.
    pub const fn description(self) -> &'static str {
        match self {
            PmuEvent::CpuCycles => "core clock cycles (fixed counter)",
            PmuEvent::InstRetired => "architecturally retired instructions",
            PmuEvent::StallFrontend => "cycles with no uops delivered by the frontend",
            PmuEvent::StallBackend => "cycles with uops available but not accepted by the backend",
            PmuEvent::BrRetired => "retired branches",
            PmuEvent::BrMisPredRetired => "retired mispredicted branches",
            PmuEvent::L1iCache => "L1 instruction cache accesses",
            PmuEvent::L1iCacheRefill => "L1 instruction cache refills (misses)",
            PmuEvent::L1dCache => "L1 data cache accesses",
            PmuEvent::L1dCacheRefill => "L1 data cache refills (misses)",
            PmuEvent::L2dCache => "unified L2 cache accesses",
            PmuEvent::L2dCacheRefill => "unified L2 cache refills (misses)",
            PmuEvent::LlCacheRd => "last-level cache read accesses",
            PmuEvent::LlCacheMissRd => "last-level cache read misses",
            PmuEvent::L1iTlb => "L1 instruction TLB accesses",
            PmuEvent::L1iTlbRefill => "L1 instruction TLB refills",
            PmuEvent::L1dTlb => "L1 data TLB accesses",
            PmuEvent::L1dTlbRefill => "L1 data TLB refills",
            PmuEvent::L2dTlb => "unified L2 TLB accesses",
            PmuEvent::L2dTlbRefill => "unified L2 TLB refills",
            PmuEvent::ItlbWalk => "instruction-side page-table walks",
            PmuEvent::DtlbWalk => "data-side page-table walks",
            PmuEvent::InstSpec => "speculatively executed instructions",
            PmuEvent::LdSpec => "speculatively executed loads",
            PmuEvent::StSpec => "speculatively executed stores",
            PmuEvent::DpSpec => "speculatively executed integer data-processing ops",
            PmuEvent::AseSpec => "speculatively executed SIMD ops",
            PmuEvent::VfpSpec => "speculatively executed floating-point ops",
            PmuEvent::BrImmedSpec => "speculatively executed immediate branches",
            PmuEvent::BrIndirectSpec => "speculatively executed indirect branches",
            PmuEvent::BrReturnSpec => "speculatively executed return branches",
            PmuEvent::CryptoSpec => "speculatively executed crypto ops",
            PmuEvent::MemAccessRd => "data memory read accesses",
            PmuEvent::MemAccessWr => "data memory write accesses",
            PmuEvent::CapMemAccessRd => "capability (tagged, 16-byte) memory reads",
            PmuEvent::CapMemAccessWr => "capability (tagged, 16-byte) memory writes",
            PmuEvent::MemAccessRdCtag => "reads performing a capability-tag check",
            PmuEvent::MemAccessWrCtag => "writes performing a capability-tag update",
            PmuEvent::SweepGranulesVisited => "capability granules visited by revocation sweeps",
            PmuEvent::SweepTagsCleared => "stale capability tags cleared by revocation sweeps",
            PmuEvent::RevocationEpochs => "revocation epochs (quarantine drains / tag sweeps)",
            PmuEvent::QuarantineBytesHighWater => "high-water mark of quarantined heap bytes",
            PmuEvent::FaultsInjected => "faults injected by the campaign harness",
            PmuEvent::FaultsTrapped => "injected faults that raised a capability trap",
            PmuEvent::SilentCorruptions => "runs ending with a corrupted checksum (0/1 per run)",
            PmuEvent::RecoveryUnwinds => "frames unwound by the recovery handler",
            PmuEvent::OpcIntAluRetired => "retired int-ALU (integer/FP/SIMD DP) instructions",
            PmuEvent::OpcIntAluCycles => "model cycles attributed to int-ALU instructions",
            PmuEvent::OpcCapManipRetired => "retired capability-manipulation DP instructions",
            PmuEvent::OpcCapManipCycles => "model cycles attributed to capability manipulation",
            PmuEvent::OpcMemScalarRetired => "retired scalar loads and stores",
            PmuEvent::OpcMemScalarCycles => "model cycles attributed to scalar loads/stores",
            PmuEvent::OpcMemCapRetired => "retired capability loads and stores",
            PmuEvent::OpcMemCapCycles => "model cycles attributed to capability loads/stores",
            PmuEvent::OpcBranchRetired => "retired branches without a PCC-bounds change",
            PmuEvent::OpcBranchCycles => "model cycles attributed to non-PCC branches",
            PmuEvent::OpcCapBranchRetired => "retired PCC-changing (capability) branches",
            PmuEvent::OpcCapBranchCycles => "model cycles attributed to PCC-changing branches",
            PmuEvent::OpcRuntimeRetired => "retired allocator-runtime (malloc/free) instructions",
            PmuEvent::OpcRuntimeCycles => "model cycles attributed to the allocator runtime",
            PmuEvent::OpcMetaRetired => "retired heap-metadata (revocation sweep) instructions",
            PmuEvent::OpcMetaCycles => "model cycles attributed to heap-metadata maintenance",
        }
    }

    /// CHERI-specific events only exist on Morello-class PMUs.
    ///
    /// The fault-campaign counters (`FAULTS_*`, `SILENT_CORRUPTIONS`,
    /// `RECOVERY_UNWINDS`) are deliberately *not* flagged: they come
    /// from the injection harness, not the core's PMU, and exist under
    /// every ABI. Likewise the `OPC_*` attribution counters — they are
    /// simulator-side accumulators that exist under every ABI (the
    /// capability classes simply read zero on hybrid).
    pub const fn is_cheri_specific(self) -> bool {
        matches!(
            self,
            PmuEvent::CapMemAccessRd
                | PmuEvent::CapMemAccessWr
                | PmuEvent::MemAccessRdCtag
                | PmuEvent::MemAccessWrCtag
                | PmuEvent::SweepGranulesVisited
                | PmuEvent::SweepTagsCleared
                | PmuEvent::RevocationEpochs
                | PmuEvent::QuarantineBytesHighWater
        )
    }

    /// Does this event live on the fixed counter (not a programmable
    /// slot)?
    pub const fn is_fixed(self) -> bool {
        matches!(self, PmuEvent::CpuCycles)
    }

    /// The per-opcode-class attribution table:
    /// `(class label, retired event, cycles event)` rows, in taxonomy
    /// order. Labels match `cheri_isa::OpClass::name()`.
    pub const fn opcode_class_pairs() -> [(&'static str, PmuEvent, PmuEvent); 8] {
        [
            (
                "int-alu",
                PmuEvent::OpcIntAluRetired,
                PmuEvent::OpcIntAluCycles,
            ),
            (
                "cap-manip",
                PmuEvent::OpcCapManipRetired,
                PmuEvent::OpcCapManipCycles,
            ),
            (
                "mem-scalar",
                PmuEvent::OpcMemScalarRetired,
                PmuEvent::OpcMemScalarCycles,
            ),
            (
                "mem-cap",
                PmuEvent::OpcMemCapRetired,
                PmuEvent::OpcMemCapCycles,
            ),
            (
                "branch",
                PmuEvent::OpcBranchRetired,
                PmuEvent::OpcBranchCycles,
            ),
            (
                "cap-branch",
                PmuEvent::OpcCapBranchRetired,
                PmuEvent::OpcCapBranchCycles,
            ),
            (
                "runtime",
                PmuEvent::OpcRuntimeRetired,
                PmuEvent::OpcRuntimeCycles,
            ),
            ("meta", PmuEvent::OpcMetaRetired, PmuEvent::OpcMetaCycles),
        ]
    }
}

impl fmt::Display for PmuEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_list_is_unique_and_complete() {
        let set: BTreeSet<_> = PmuEvent::ALL.iter().collect();
        assert_eq!(set.len(), PmuEvent::ALL.len());
    }

    #[test]
    fn names_are_unique() {
        let set: BTreeSet<_> = PmuEvent::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(set.len(), PmuEvent::ALL.len());
    }

    #[test]
    fn cheri_events_flagged() {
        assert!(PmuEvent::CapMemAccessRd.is_cheri_specific());
        assert!(!PmuEvent::L1dCache.is_cheri_specific());
        assert_eq!(
            PmuEvent::ALL
                .iter()
                .filter(|e| e.is_cheri_specific())
                .count(),
            8
        );
    }

    #[test]
    fn every_event_has_a_description() {
        for e in PmuEvent::ALL {
            assert!(!e.description().is_empty());
            assert!(e.description().len() > 10, "{e}");
        }
    }

    #[test]
    fn opcode_class_table_covers_every_opc_event() {
        let mut seen = BTreeSet::new();
        for (label, retired, cycles) in PmuEvent::opcode_class_pairs() {
            assert!(retired.name().starts_with("OPC_"), "{label}");
            assert!(retired.name().ends_with("_RETIRED"));
            assert!(cycles.name().starts_with("OPC_"));
            assert!(cycles.name().ends_with("_CYCLES"));
            seen.insert(retired);
            seen.insert(cycles);
        }
        let all_opc = PmuEvent::ALL
            .iter()
            .filter(|e| e.name().starts_with("OPC_"))
            .count();
        assert_eq!(seen.len(), all_opc);
        assert_eq!(all_opc, 16);
    }

    #[test]
    fn only_cycles_is_fixed() {
        assert!(PmuEvent::CpuCycles.is_fixed());
        assert_eq!(PmuEvent::ALL.iter().filter(|e| e.is_fixed()).count(), 1);
    }
}
