//! Pearson correlation across metric vectors (Figure 7).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must be equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Full correlation matrix over a set of metric series (each inner slice
/// is one metric observed across workloads).
///
/// # Panics
///
/// Panics when series lengths differ.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    series
        .iter()
        .map(|a| series.iter().map(|b| pearson(a, b)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlations() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 4.0, 6.0, 8.0];
        let c = vec![4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independence_is_near_zero() {
        let a = vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let b = vec![5.0, 5.0, 7.0, 7.0, 5.0, 5.0];
        assert!(pearson(&a, &b).abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 5.0],
            vec![2.0, 1.0, 4.0, 4.0],
            vec![0.5, 0.1, 0.9, 0.7],
        ];
        let m = correlation_matrix(&series);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
                assert!(*v <= 1.0 + 1e-12 && *v >= -1.0 - 1e-12);
            }
        }
    }
}
