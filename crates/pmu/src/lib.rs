//! # morello-pmu
//!
//! The measurement layer of the reproduction: the PMU events of the
//! paper's Table 1, a six-slot counter bank with **multiplexed
//! collection** (the paper's nine-run methodology on the real Morello,
//! which only exposes six configurable counters at a time), every derived
//! metric of Table 1, and the Pearson correlation analysis behind
//! Figure 7.
//!
//! ```
//! use morello_pmu::{DerivedMetrics, EventCounts, PmuEvent};
//! use morello_uarch::UarchStats;
//!
//! let stats = UarchStats {
//!     cpu_cycles: 1000,
//!     inst_retired: 1500,
//!     ..UarchStats::default()
//! };
//! let counts = EventCounts::from_uarch(&stats);
//! assert_eq!(counts.get(PmuEvent::InstRetired), 1500);
//! let m = DerivedMetrics::from_counts(&counts);
//! assert!((m.ipc - 1.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlate;
mod counters;
mod derived;
mod event;
mod report;

pub use correlate::{correlation_matrix, pearson};
pub use counters::{EventCounts, MultiplexedSession, PmuBank, PMU_SLOTS};
pub use derived::DerivedMetrics;
pub use event::PmuEvent;
pub use report::{
    flag_value, fmt_metric, jobs_flag, journal_flag, out_flag, trace_flag, write_json_out, Table,
};
