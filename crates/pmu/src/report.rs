//! Plain-text table rendering shared by the experiment binaries.

use core::fmt::Write as _;

/// A fixed-width text table in the style of the paper's tables.
///
/// ```
/// use morello_pmu::Table;
/// let mut t = Table::new(&["Benchmark", "Hybrid", "Purecap"]);
/// t.row(&["520.omnetpp_r", "81.73", "153.21"]);
/// let s = t.render();
/// assert!(s.contains("omnetpp"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        let mut row: Vec<String> = cells.iter().map(|c| c.as_ref().to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Extracts the value of a `--<name> <value>` (or `--<name>=<value>`)
/// flag from a command line. `name` is given without the leading dashes.
pub fn flag_value<S: AsRef<str>>(args: &[S], name: &str) -> Option<String> {
    let bare = format!("--{name}");
    let eq = format!("--{name}=");
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(a) = it.next() {
        if a == bare {
            return it.next().map(str::to_owned);
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
    }
    None
}

/// Extracts the value of a `--out <path>` (or `--out=<path>`) flag from a
/// command line — the shared JSON-export flag of the figure/table
/// binaries.
pub fn out_flag<S: AsRef<str>>(args: &[S]) -> Option<std::path::PathBuf> {
    flag_value(args, "out").map(std::path::PathBuf::from)
}

/// Extracts the value of a `--jobs <n>` (or `--jobs=<n>`) flag — the
/// shared worker-count flag of the suite-driving binaries. A present but
/// unparsable value comes back as `Some(Err(raw))` so binaries can
/// reject it instead of silently running with a default.
pub fn jobs_flag<S: AsRef<str>>(args: &[S]) -> Option<Result<usize, String>> {
    flag_value(args, "jobs").map(|v| v.parse::<usize>().map_err(|_| v))
}

/// Extracts the value of a `--journal <path>` flag — the shared run
/// journal destination of the suite-driving binaries.
pub fn journal_flag<S: AsRef<str>>(args: &[S]) -> Option<std::path::PathBuf> {
    flag_value(args, "journal").map(std::path::PathBuf::from)
}

/// Extracts the value of a `--trace <path>` flag — the shared phase
/// trace destination of the experiment binaries (Chrome `trace_event`
/// JSON at the path, JSONL alongside).
pub fn trace_flag<S: AsRef<str>>(args: &[S]) -> Option<std::path::PathBuf> {
    flag_value(args, "trace").map(std::path::PathBuf::from)
}

/// Writes `value` as pretty-printed JSON to `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_out(
    path: &std::path::Path,
    value: &impl serde::Serialize,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

/// Formats a float the way the paper's tables do (3 significant decimals,
/// no trailing noise).
pub fn fmt_metric(v: f64) -> String {
    if !v.is_finite() {
        return "NA".to_owned();
    }
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "x"]);
        t.row(&["a", "1"]).row(&["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn rows_resized_to_header_count() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn flag_parsing() {
        let args = ["bin", "--jobs", "4", "--out=x.json", "--journal", "j.jsonl"];
        assert_eq!(jobs_flag(&args), Some(Ok(4)));
        assert_eq!(out_flag(&args), Some(std::path::PathBuf::from("x.json")));
        assert_eq!(
            journal_flag(&args),
            Some(std::path::PathBuf::from("j.jsonl"))
        );
        assert_eq!(jobs_flag(&["bin", "--jobs=16"]), Some(Ok(16)));
        assert_eq!(
            jobs_flag(&["bin", "--jobs", "lots"]),
            Some(Err("lots".to_owned()))
        );
        assert_eq!(jobs_flag(&["bin"]), None);
        assert_eq!(journal_flag(&["bin", "--out", "x"]), None);
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(0.123456), "0.123");
        assert_eq!(fmt_metric(1.5), "1.50");
        assert_eq!(fmt_metric(153.21), "153.2");
        assert_eq!(fmt_metric(f64::NAN), "NA");
    }
}
