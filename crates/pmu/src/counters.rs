//! Event counts, the six-slot counter bank, and multiplexed collection.

use crate::event::PmuEvent;
use morello_uarch::UarchStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of configurable PMU slots on the Morello platform (§3.2: "the
/// platform only provides up to six configurable PMUs").
pub const PMU_SLOTS: usize = 6;

/// A set of event counts (one run's worth, or the merged result of a
/// multiplexed session).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    counts: BTreeMap<PmuEvent, u64>,
}

impl EventCounts {
    /// An empty count set.
    pub fn new() -> EventCounts {
        EventCounts::default()
    }

    /// Extracts the full "ground truth" count set from the simulator's
    /// statistics — what an ideal PMU with unlimited counters would see.
    pub fn from_uarch(s: &UarchStats) -> EventCounts {
        let mut c = EventCounts::new();
        let pairs: [(PmuEvent, u64); 62] = [
            (PmuEvent::CpuCycles, s.cpu_cycles),
            (PmuEvent::InstRetired, s.inst_retired),
            (PmuEvent::StallFrontend, s.stall_frontend),
            (PmuEvent::StallBackend, s.stall_backend),
            (PmuEvent::BrRetired, s.br_retired),
            (PmuEvent::BrMisPredRetired, s.br_mis_pred_retired),
            (PmuEvent::L1iCache, s.l1i_cache),
            (PmuEvent::L1iCacheRefill, s.l1i_cache_refill),
            (PmuEvent::L1dCache, s.l1d_cache),
            (PmuEvent::L1dCacheRefill, s.l1d_cache_refill),
            (PmuEvent::L2dCache, s.l2d_cache),
            (PmuEvent::L2dCacheRefill, s.l2d_cache_refill),
            (PmuEvent::LlCacheRd, s.ll_cache_rd),
            (PmuEvent::LlCacheMissRd, s.ll_cache_miss_rd),
            (PmuEvent::L1iTlb, s.l1i_tlb),
            (PmuEvent::L1iTlbRefill, s.l1i_tlb_refill),
            (PmuEvent::L1dTlb, s.l1d_tlb),
            (PmuEvent::L1dTlbRefill, s.l1d_tlb_refill),
            (PmuEvent::L2dTlb, s.l2d_tlb),
            (PmuEvent::L2dTlbRefill, s.l2d_tlb_refill),
            (PmuEvent::ItlbWalk, s.itlb_walk),
            (PmuEvent::DtlbWalk, s.dtlb_walk),
            (PmuEvent::InstSpec, s.inst_spec),
            (PmuEvent::LdSpec, s.ld_spec),
            (PmuEvent::StSpec, s.st_spec),
            (PmuEvent::DpSpec, s.dp_spec),
            (PmuEvent::AseSpec, s.ase_spec),
            (PmuEvent::VfpSpec, s.vfp_spec),
            (PmuEvent::BrImmedSpec, s.br_immed_spec),
            (PmuEvent::BrIndirectSpec, s.br_indirect_spec),
            (PmuEvent::BrReturnSpec, s.br_return_spec),
            (PmuEvent::CryptoSpec, 0),
            (PmuEvent::MemAccessRd, s.mem_access_rd),
            (PmuEvent::MemAccessWr, s.mem_access_wr),
            (PmuEvent::CapMemAccessRd, s.cap_mem_access_rd),
            (PmuEvent::CapMemAccessWr, s.cap_mem_access_wr),
            (PmuEvent::MemAccessRdCtag, s.mem_access_rd_ctag),
            (PmuEvent::MemAccessWrCtag, s.mem_access_wr_ctag),
            (PmuEvent::SweepGranulesVisited, s.sweep_granules_visited),
            (PmuEvent::SweepTagsCleared, s.sweep_tags_cleared),
            (PmuEvent::RevocationEpochs, s.revocation_epochs),
            (PmuEvent::QuarantineBytesHighWater, s.quarantine_bytes_hwm),
            (PmuEvent::FaultsInjected, s.faults_injected),
            (PmuEvent::FaultsTrapped, s.faults_trapped),
            (PmuEvent::SilentCorruptions, s.silent_corruptions),
            (PmuEvent::RecoveryUnwinds, s.recovery_unwinds),
            (PmuEvent::OpcIntAluRetired, s.opc_int_alu_retired),
            (PmuEvent::OpcIntAluCycles, s.opc_int_alu_cycles),
            (PmuEvent::OpcCapManipRetired, s.opc_cap_manip_retired),
            (PmuEvent::OpcCapManipCycles, s.opc_cap_manip_cycles),
            (PmuEvent::OpcMemScalarRetired, s.opc_mem_scalar_retired),
            (PmuEvent::OpcMemScalarCycles, s.opc_mem_scalar_cycles),
            (PmuEvent::OpcMemCapRetired, s.opc_mem_cap_retired),
            (PmuEvent::OpcMemCapCycles, s.opc_mem_cap_cycles),
            (PmuEvent::OpcBranchRetired, s.opc_branch_retired),
            (PmuEvent::OpcBranchCycles, s.opc_branch_cycles),
            (PmuEvent::OpcCapBranchRetired, s.opc_cap_branch_retired),
            (PmuEvent::OpcCapBranchCycles, s.opc_cap_branch_cycles),
            (PmuEvent::OpcRuntimeRetired, s.opc_runtime_retired),
            (PmuEvent::OpcRuntimeCycles, s.opc_runtime_cycles),
            (PmuEvent::OpcMetaRetired, s.opc_meta_retired),
            (PmuEvent::OpcMetaCycles, s.opc_meta_cycles),
        ];
        for (e, v) in pairs {
            c.counts.insert(e, v);
        }
        c
    }

    /// The count of `event` (0 when never collected).
    pub fn get(&self, event: PmuEvent) -> u64 {
        self.counts.get(&event).copied().unwrap_or(0)
    }

    /// Whether `event` was collected at all.
    pub fn has(&self, event: PmuEvent) -> bool {
        self.counts.contains_key(&event)
    }

    /// Sets a count.
    pub fn set(&mut self, event: PmuEvent, value: u64) {
        self.counts.insert(event, value);
    }

    /// Merges another count set into this one (later runs of a
    /// multiplexed session).
    pub fn merge(&mut self, other: &EventCounts) {
        for (e, v) in &other.counts {
            self.counts.insert(*e, *v);
        }
    }

    /// The per-event difference `self - earlier`, over the events
    /// present in `self` — the interval arithmetic behind windowed
    /// (`pmcstat -w`-style) collection. Counters are cumulative and
    /// monotone, so the subtraction saturates rather than wraps on
    /// disagreeing snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &EventCounts) -> EventCounts {
        let mut out = EventCounts::new();
        for (e, v) in &self.counts {
            out.counts.insert(*e, v.saturating_sub(earlier.get(*e)));
        }
        out
    }

    /// Adds every count of `other` into this set (the inverse of
    /// [`delta`](EventCounts::delta): summing interval deltas
    /// reconstructs the final cumulative counts).
    pub fn accumulate(&mut self, other: &EventCounts) {
        for (e, v) in &other.counts {
            *self.counts.entry(*e).or_insert(0) += v;
        }
    }

    /// Iterates over `(event, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (PmuEvent, u64)> + '_ {
        self.counts.iter().map(|(e, v)| (*e, *v))
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// The hardware counter bank: one fixed cycle counter plus
/// [`PMU_SLOTS`] programmable slots.
///
/// Reading through a bank models what `pmcstat` sees in one run: only the
/// programmed events, plus cycles.
#[derive(Clone, Debug, Default)]
pub struct PmuBank {
    programmed: Vec<PmuEvent>,
}

impl PmuBank {
    /// Creates an unprogrammed bank.
    pub fn new() -> PmuBank {
        PmuBank::default()
    }

    /// Programs the configurable slots.
    ///
    /// # Errors
    ///
    /// Returns `Err` when more than [`PMU_SLOTS`] non-fixed events are
    /// requested, or an event is requested twice.
    pub fn program(&mut self, events: &[PmuEvent]) -> Result<(), String> {
        let slots: Vec<PmuEvent> = events.iter().copied().filter(|e| !e.is_fixed()).collect();
        if slots.len() > PMU_SLOTS {
            return Err(format!(
                "{} events requested but only {PMU_SLOTS} programmable slots exist",
                slots.len()
            ));
        }
        for (i, e) in slots.iter().enumerate() {
            if slots[..i].contains(e) {
                return Err(format!("event {e} programmed twice"));
            }
        }
        self.programmed = slots;
        Ok(())
    }

    /// The events currently programmed.
    pub fn programmed(&self) -> &[PmuEvent] {
        &self.programmed
    }

    /// Reads the bank after a run: the programmed events plus the fixed
    /// cycle counter.
    pub fn read(&self, truth: &EventCounts) -> EventCounts {
        let mut out = EventCounts::new();
        out.set(PmuEvent::CpuCycles, truth.get(PmuEvent::CpuCycles));
        for e in &self.programmed {
            out.set(*e, truth.get(*e));
        }
        out
    }
}

/// Multiplexed collection: schedules an event list across repeated runs of
/// a (deterministic) workload, six at a time — the paper's nine-run
/// methodology (§3.2).
///
/// `INST_RETIRED` is re-collected in every group as the normalisation
/// anchor, exactly as performance engineers do with `pmcstat`.
#[derive(Clone, Debug)]
pub struct MultiplexedSession {
    groups: Vec<Vec<PmuEvent>>,
}

impl MultiplexedSession {
    /// Plans a session collecting `events`.
    pub fn plan(events: &[PmuEvent]) -> MultiplexedSession {
        let anchor = PmuEvent::InstRetired;
        let mut rest: Vec<PmuEvent> = Vec::new();
        for e in events {
            if !e.is_fixed() && *e != anchor && !rest.contains(e) {
                rest.push(*e);
            }
        }
        let per_group = PMU_SLOTS - 1;
        let mut groups = Vec::new();
        if rest.is_empty() {
            groups.push(vec![anchor]);
        }
        for chunk in rest.chunks(per_group) {
            let mut g = vec![anchor];
            g.extend_from_slice(chunk);
            groups.push(g);
        }
        MultiplexedSession { groups }
    }

    /// Plans a session for the full Table 1 event set.
    pub fn plan_full() -> MultiplexedSession {
        MultiplexedSession::plan(&PmuEvent::ALL)
    }

    /// How many runs of the workload this session needs.
    pub fn required_runs(&self) -> usize {
        self.groups.len()
    }

    /// The event groups, one per run.
    pub fn groups(&self) -> &[Vec<PmuEvent>] {
        &self.groups
    }

    /// Executes the session: `run(group_index)` must re-run the workload
    /// and return the full simulator truth; the session reads only the
    /// programmed slots of each run and merges.
    ///
    /// # Errors
    ///
    /// Propagates programming errors (cannot happen for planned groups)
    /// and any error from the runner.
    pub fn collect<E>(
        &self,
        mut run: impl FnMut(usize) -> Result<UarchStats, E>,
    ) -> Result<EventCounts, E> {
        let mut merged = EventCounts::new();
        let mut bank = PmuBank::new();
        for (i, group) in self.groups.iter().enumerate() {
            bank.program(group).expect("planned groups always fit");
            let truth = EventCounts::from_uarch(&run(i)?);
            merged.merge(&bank.read(&truth));
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_rejects_overflow_and_duplicates() {
        let mut b = PmuBank::new();
        let too_many = [
            PmuEvent::LdSpec,
            PmuEvent::StSpec,
            PmuEvent::DpSpec,
            PmuEvent::AseSpec,
            PmuEvent::VfpSpec,
            PmuEvent::BrRetired,
            PmuEvent::InstSpec,
        ];
        assert!(b.program(&too_many).is_err());
        assert!(b.program(&[PmuEvent::LdSpec, PmuEvent::LdSpec]).is_err());
        // Fixed cycles don't consume a slot.
        let six_plus_cycles = [
            PmuEvent::CpuCycles,
            PmuEvent::LdSpec,
            PmuEvent::StSpec,
            PmuEvent::DpSpec,
            PmuEvent::AseSpec,
            PmuEvent::VfpSpec,
            PmuEvent::BrRetired,
        ];
        assert!(b.program(&six_plus_cycles).is_ok());
    }

    #[test]
    fn bank_reads_only_programmed_events() {
        let truth = {
            let mut t = EventCounts::new();
            t.set(PmuEvent::CpuCycles, 100);
            t.set(PmuEvent::LdSpec, 7);
            t.set(PmuEvent::StSpec, 3);
            t
        };
        let mut b = PmuBank::new();
        b.program(&[PmuEvent::LdSpec]).unwrap();
        let read = b.read(&truth);
        assert_eq!(read.get(PmuEvent::LdSpec), 7);
        assert_eq!(read.get(PmuEvent::CpuCycles), 100);
        assert!(!read.has(PmuEvent::StSpec));
    }

    #[test]
    fn full_plan_covers_all_events() {
        let plan = MultiplexedSession::plan_full();
        // 60 non-fixed non-anchor events at 5 per group.
        assert_eq!(plan.required_runs(), 12);
        let mut seen = std::collections::BTreeSet::new();
        for g in plan.groups() {
            assert!(g.len() <= PMU_SLOTS);
            assert_eq!(g[0], PmuEvent::InstRetired, "anchor first in each group");
            seen.extend(g.iter().copied());
        }
        for e in PmuEvent::ALL {
            assert!(
                e.is_fixed() || seen.contains(&e),
                "event {e} never scheduled"
            );
        }
    }

    #[test]
    fn collect_merges_groups() {
        let plan = MultiplexedSession::plan(&[
            PmuEvent::LdSpec,
            PmuEvent::StSpec,
            PmuEvent::DpSpec,
            PmuEvent::AseSpec,
            PmuEvent::VfpSpec,
            PmuEvent::BrRetired,
            PmuEvent::BrMisPredRetired,
        ]);
        assert_eq!(plan.required_runs(), 2);
        let stats = UarchStats {
            cpu_cycles: 50,
            inst_retired: 99,
            ld_spec: 1,
            st_spec: 2,
            dp_spec: 3,
            ase_spec: 4,
            vfp_spec: 5,
            br_retired: 6,
            br_mis_pred_retired: 7,
            ..UarchStats::default()
        };
        let merged: EventCounts = plan
            .collect(|_| Ok::<_, std::convert::Infallible>(stats))
            .unwrap();
        assert_eq!(merged.get(PmuEvent::LdSpec), 1);
        assert_eq!(merged.get(PmuEvent::BrMisPredRetired), 7);
        assert_eq!(merged.get(PmuEvent::InstRetired), 99);
        assert_eq!(merged.get(PmuEvent::CpuCycles), 50);
    }

    #[test]
    fn multiplexed_equals_ground_truth_for_deterministic_runs() {
        // The simulator is deterministic, so a multiplexed session must
        // reconstruct exactly the single-run truth.
        let stats = UarchStats {
            cpu_cycles: 123,
            inst_retired: 456,
            l1d_cache: 789,
            l1d_cache_refill: 12,
            cap_mem_access_rd: 34,
            ..UarchStats::default()
        };
        let truth = EventCounts::from_uarch(&stats);
        let merged = MultiplexedSession::plan_full()
            .collect(|_| Ok::<_, std::convert::Infallible>(stats))
            .unwrap();
        for (e, v) in truth.iter() {
            assert_eq!(merged.get(e), v, "mismatch on {e}");
        }
    }
}
