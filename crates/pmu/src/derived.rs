//! The derived metrics of the paper's Table 1.

use crate::counters::EventCounts;
use crate::event::PmuEvent;
use serde::{Deserialize, Serialize};

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn per_kilo(num: u64, den: u64) -> f64 {
    ratio(num, den) * 1000.0
}

/// Every derived metric of Table 1, computed with exactly the paper's
/// formulas (including the idiosyncratic `Retiring % = INST_SPEC /
/// SUM(*_SPEC)`, whose denominator includes `INST_SPEC` itself — which is
/// why the paper's Table 4 reports Retiring ≈ 0.5 across the board).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// `STALL_FRONTEND / CPU_CYCLES`.
    pub frontend_bound: f64,
    /// `STALL_BACKEND / CPU_CYCLES`.
    pub backend_bound: f64,
    /// `INST_SPEC / SUM(*_SPEC)`.
    pub retiring: f64,
    /// `1 - Retiring - Frontend - Backend` (clamped at 0).
    pub bad_speculation: f64,
    /// `BR_MIS_PRED_RETIRED / BR_RETIRED`.
    pub branch_mispredict_rate: f64,
    /// `L1I_CACHE_REFILL / L1I_CACHE`.
    pub l1i_miss_rate: f64,
    /// `L1I_CACHE_REFILL / INST_RETIRED * 1000`.
    pub l1i_mpki: f64,
    /// `L1D_CACHE_REFILL / L1D_CACHE`.
    pub l1d_miss_rate: f64,
    /// `L1D_CACHE_REFILL / INST_RETIRED * 1000`.
    pub l1d_mpki: f64,
    /// `L2D_CACHE_REFILL / L2D_CACHE`.
    pub l2_miss_rate: f64,
    /// `L2D_CACHE_REFILL / INST_RETIRED * 1000`.
    pub l2_mpki: f64,
    /// `LL_CACHE_MISS_RD / LL_CACHE_RD`.
    pub llc_read_miss_rate: f64,
    /// `LL_CACHE_MISS_RD / INST_RETIRED * 1000`.
    pub llc_read_mpki: f64,
    /// `ITLB_WALK / L1I_TLB`.
    pub itlb_walk_rate: f64,
    /// `ITLB_WALK / INST_RETIRED * 1000`.
    pub itlb_wpki: f64,
    /// `DTLB_WALK / L1D_TLB`.
    pub dtlb_walk_rate: f64,
    /// `DTLB_WALK / INST_RETIRED * 1000`.
    pub dtlb_wpki: f64,
    /// `CAP_MEM_ACCESS_RD / LD_SPEC`.
    pub cap_load_density: f64,
    /// `CAP_MEM_ACCESS_WR / ST_SPEC`.
    pub cap_store_density: f64,
    /// `(CAP_MEM_ACCESS_RD + CAP_MEM_ACCESS_WR) / (MEM_ACCESS_RD + MEM_ACCESS_WR)`.
    pub cap_traffic_share: f64,
    /// `(MEM_ACCESS_RD_CTAG + MEM_ACCESS_WR_CTAG) / (MEM_ACCESS_RD + MEM_ACCESS_WR)`.
    pub cap_tag_overhead: f64,
    /// `(LD_SPEC + ST_SPEC) / (DP_SPEC + ASE_SPEC + VFP_SPEC)`.
    pub memory_intensity: f64,
    /// `SWEEP_GRANULES_VISITED / INST_RETIRED * 1000` — revocation sweep
    /// work per kilo-instruction (0 without a sweeping allocator).
    #[serde(default)]
    pub sweep_granules_pki: f64,
    /// `SWEEP_TAGS_CLEARED / SWEEP_GRANULES_VISITED` — how much of the
    /// swept heap actually held stale capabilities.
    #[serde(default)]
    pub sweep_clear_rate: f64,
    /// `FAULTS_TRAPPED / FAULTS_INJECTED` — the share of injected
    /// corruptions the architecture detected (0 without a campaign;
    /// ≈1.0 is the CHERI deterministic-detection headline).
    #[serde(default)]
    pub fault_trap_coverage: f64,
    /// `SILENT_CORRUPTIONS / FAULTS_INJECTED` — the share of injected
    /// corruptions that reached the exit checksum undetected.
    #[serde(default)]
    pub silent_corruption_rate: f64,
}

impl DerivedMetrics {
    /// Computes every metric from raw counts. Missing events contribute 0.
    pub fn from_counts(c: &EventCounts) -> DerivedMetrics {
        use PmuEvent as E;
        let cycles = c.get(E::CpuCycles);
        let retired = c.get(E::InstRetired);
        let inst_spec = c.get(E::InstSpec);
        let sum_spec = inst_spec
            + c.get(E::LdSpec)
            + c.get(E::StSpec)
            + c.get(E::DpSpec)
            + c.get(E::AseSpec)
            + c.get(E::VfpSpec)
            + c.get(E::BrImmedSpec)
            + c.get(E::BrIndirectSpec)
            + c.get(E::BrReturnSpec)
            + c.get(E::CryptoSpec);
        let frontend_bound = ratio(c.get(E::StallFrontend), cycles);
        let backend_bound = ratio(c.get(E::StallBackend), cycles);
        let retiring = ratio(inst_spec, sum_spec);
        let mem_total = c.get(E::MemAccessRd) + c.get(E::MemAccessWr);
        DerivedMetrics {
            ipc: ratio(retired, cycles),
            cpi: ratio(cycles, retired),
            frontend_bound,
            backend_bound,
            retiring,
            bad_speculation: (1.0 - retiring - frontend_bound - backend_bound).max(0.0),
            branch_mispredict_rate: ratio(c.get(E::BrMisPredRetired), c.get(E::BrRetired)),
            l1i_miss_rate: ratio(c.get(E::L1iCacheRefill), c.get(E::L1iCache)),
            l1i_mpki: per_kilo(c.get(E::L1iCacheRefill), retired),
            l1d_miss_rate: ratio(c.get(E::L1dCacheRefill), c.get(E::L1dCache)),
            l1d_mpki: per_kilo(c.get(E::L1dCacheRefill), retired),
            l2_miss_rate: ratio(c.get(E::L2dCacheRefill), c.get(E::L2dCache)),
            l2_mpki: per_kilo(c.get(E::L2dCacheRefill), retired),
            llc_read_miss_rate: ratio(c.get(E::LlCacheMissRd), c.get(E::LlCacheRd)),
            llc_read_mpki: per_kilo(c.get(E::LlCacheMissRd), retired),
            itlb_walk_rate: ratio(c.get(E::ItlbWalk), c.get(E::L1iTlb)),
            itlb_wpki: per_kilo(c.get(E::ItlbWalk), retired),
            dtlb_walk_rate: ratio(c.get(E::DtlbWalk), c.get(E::L1dTlb)),
            dtlb_wpki: per_kilo(c.get(E::DtlbWalk), retired),
            cap_load_density: ratio(c.get(E::CapMemAccessRd), c.get(E::LdSpec)),
            cap_store_density: ratio(c.get(E::CapMemAccessWr), c.get(E::StSpec)),
            cap_traffic_share: ratio(
                c.get(E::CapMemAccessRd) + c.get(E::CapMemAccessWr),
                mem_total,
            ),
            cap_tag_overhead: ratio(
                c.get(E::MemAccessRdCtag) + c.get(E::MemAccessWrCtag),
                mem_total,
            ),
            memory_intensity: ratio(
                c.get(E::LdSpec) + c.get(E::StSpec),
                c.get(E::DpSpec) + c.get(E::AseSpec) + c.get(E::VfpSpec),
            ),
            sweep_granules_pki: per_kilo(c.get(E::SweepGranulesVisited), retired),
            sweep_clear_rate: ratio(c.get(E::SweepTagsCleared), c.get(E::SweepGranulesVisited)),
            fault_trap_coverage: ratio(c.get(E::FaultsTrapped), c.get(E::FaultsInjected)),
            silent_corruption_rate: ratio(c.get(E::SilentCorruptions), c.get(E::FaultsInjected)),
        }
    }

    /// Classifies by memory intensity per §3.3: below ~0.6
    /// compute-intensive, 0.6–1.0 balanced, above 1.0 memory-centric.
    pub fn intensity_class(&self) -> &'static str {
        if self.memory_intensity < 0.6 {
            "compute-intensive"
        } else if self.memory_intensity <= 1.0 {
            "balanced"
        } else {
            "memory-centric"
        }
    }

    /// `(label, value)` pairs of the metrics used in the Figure 7
    /// correlation analysis.
    pub fn labelled(&self) -> [(&'static str, f64); 15] {
        [
            ("IPC", self.ipc),
            ("FrontendBound", self.frontend_bound),
            ("BackendBound", self.backend_bound),
            ("BranchMR", self.branch_mispredict_rate),
            ("L1I_MR", self.l1i_miss_rate),
            ("L1D_MR", self.l1d_miss_rate),
            ("L2_MR", self.l2_miss_rate),
            ("LLC_RD_MR", self.llc_read_miss_rate),
            ("ITLB_WPKI", self.itlb_wpki),
            ("DTLB_WPKI", self.dtlb_wpki),
            ("CapLoadDensity", self.cap_load_density),
            ("CapStoreDensity", self.cap_store_density),
            ("CapTrafficShare", self.cap_traffic_share),
            ("CapTagOverhead", self.cap_tag_overhead),
            ("MemIntensity", self.memory_intensity),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> EventCounts {
        let mut c = EventCounts::new();
        c.set(PmuEvent::CpuCycles, 1000);
        c.set(PmuEvent::InstRetired, 2000);
        c.set(PmuEvent::StallFrontend, 100);
        c.set(PmuEvent::StallBackend, 300);
        c.set(PmuEvent::InstSpec, 2000);
        c.set(PmuEvent::LdSpec, 500);
        c.set(PmuEvent::StSpec, 250);
        c.set(PmuEvent::DpSpec, 900);
        c.set(PmuEvent::AseSpec, 50);
        c.set(PmuEvent::VfpSpec, 50);
        c.set(PmuEvent::BrImmedSpec, 200);
        c.set(PmuEvent::BrIndirectSpec, 30);
        c.set(PmuEvent::BrReturnSpec, 20);
        c.set(PmuEvent::BrRetired, 250);
        c.set(PmuEvent::BrMisPredRetired, 10);
        c.set(PmuEvent::L1dCache, 750);
        c.set(PmuEvent::L1dCacheRefill, 30);
        c.set(PmuEvent::MemAccessRd, 500);
        c.set(PmuEvent::MemAccessWr, 250);
        c.set(PmuEvent::CapMemAccessRd, 100);
        c.set(PmuEvent::CapMemAccessWr, 50);
        c.set(PmuEvent::MemAccessRdCtag, 100);
        c.set(PmuEvent::MemAccessWrCtag, 50);
        c
    }

    #[test]
    fn table1_formulas() {
        let m = DerivedMetrics::from_counts(&sample_counts());
        assert!((m.ipc - 2.0).abs() < 1e-12);
        assert!((m.cpi - 0.5).abs() < 1e-12);
        assert!((m.frontend_bound - 0.1).abs() < 1e-12);
        assert!((m.backend_bound - 0.3).abs() < 1e-12);
        // sum_spec = 2000+500+250+900+50+50+200+30+20 = 4000
        assert!((m.retiring - 0.5).abs() < 1e-12);
        assert!((m.bad_speculation - 0.1).abs() < 1e-12);
        assert!((m.branch_mispredict_rate - 0.04).abs() < 1e-12);
        assert!((m.l1d_miss_rate - 0.04).abs() < 1e-12);
        assert!((m.l1d_mpki - 15.0).abs() < 1e-12);
        assert!((m.cap_load_density - 0.2).abs() < 1e-12);
        assert!((m.cap_store_density - 0.2).abs() < 1e-12);
        assert!((m.cap_traffic_share - 0.2).abs() < 1e-12);
        assert!((m.cap_tag_overhead - 0.2).abs() < 1e-12);
        assert!((m.memory_intensity - 0.75).abs() < 1e-12);
    }

    #[test]
    fn intensity_classes() {
        let mut m = DerivedMetrics {
            memory_intensity: 0.3,
            ..DerivedMetrics::default()
        };
        assert_eq!(m.intensity_class(), "compute-intensive");
        m.memory_intensity = 0.8;
        assert_eq!(m.intensity_class(), "balanced");
        m.memory_intensity = 1.16;
        assert_eq!(m.intensity_class(), "memory-centric");
    }

    #[test]
    fn sweep_metrics_derived() {
        let mut c = sample_counts();
        c.set(PmuEvent::SweepGranulesVisited, 4000);
        c.set(PmuEvent::SweepTagsCleared, 400);
        let m = DerivedMetrics::from_counts(&c);
        assert!((m.sweep_granules_pki - 2000.0).abs() < 1e-12);
        assert!((m.sweep_clear_rate - 0.1).abs() < 1e-12);
        let none = DerivedMetrics::from_counts(&sample_counts());
        assert_eq!(none.sweep_granules_pki, 0.0);
        assert_eq!(none.sweep_clear_rate, 0.0);
    }

    #[test]
    fn fault_metrics_derived() {
        let mut c = sample_counts();
        c.set(PmuEvent::FaultsInjected, 8);
        c.set(PmuEvent::FaultsTrapped, 8);
        let m = DerivedMetrics::from_counts(&c);
        assert!((m.fault_trap_coverage - 1.0).abs() < 1e-12);
        assert_eq!(m.silent_corruption_rate, 0.0);
        c.set(PmuEvent::FaultsTrapped, 0);
        c.set(PmuEvent::SilentCorruptions, 2);
        let m = DerivedMetrics::from_counts(&c);
        assert_eq!(m.fault_trap_coverage, 0.0);
        assert!((m.silent_corruption_rate - 0.25).abs() < 1e-12);
        let none = DerivedMetrics::from_counts(&sample_counts());
        assert_eq!(none.fault_trap_coverage, 0.0);
        assert_eq!(none.silent_corruption_rate, 0.0);
    }

    #[test]
    fn empty_counts_dont_divide_by_zero() {
        let m = DerivedMetrics::from_counts(&EventCounts::new());
        assert_eq!(m.ipc, 0.0);
        assert_eq!(m.branch_mispredict_rate, 0.0);
        assert!(m.bad_speculation >= 0.0);
    }

    #[test]
    fn bad_speculation_clamped() {
        let mut c = sample_counts();
        c.set(PmuEvent::StallFrontend, 600);
        c.set(PmuEvent::StallBackend, 600);
        let m = DerivedMetrics::from_counts(&c);
        assert_eq!(m.bad_speculation, 0.0);
    }
}
