//! Property tests for the multiplexed-collection planner and the counter
//! bank: any event subset must be schedulable, collected exactly once,
//! and merge losslessly.

use morello_pmu::{EventCounts, MultiplexedSession, PmuBank, PmuEvent, PMU_SLOTS};
use morello_uarch::UarchStats;
use proptest::prelude::*;

fn event_subset() -> impl Strategy<Value = Vec<PmuEvent>> {
    proptest::collection::vec(0usize..PmuEvent::ALL.len(), 1..PmuEvent::ALL.len())
        .prop_map(|idxs| idxs.into_iter().map(|i| PmuEvent::ALL[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every requested event is scheduled exactly once; every group fits
    /// the hardware; the anchor leads every group.
    #[test]
    fn plan_covers_each_event_once(events in event_subset()) {
        let plan = MultiplexedSession::plan(&events);
        let mut seen = std::collections::BTreeMap::new();
        for g in plan.groups() {
            prop_assert!(g.len() <= PMU_SLOTS);
            prop_assert_eq!(g[0], PmuEvent::InstRetired);
            for e in &g[1..] {
                *seen.entry(*e).or_insert(0) += 1;
            }
        }
        for e in &events {
            if e.is_fixed() || *e == PmuEvent::InstRetired {
                continue;
            }
            prop_assert_eq!(seen.get(e).copied().unwrap_or(0), 1, "{} scheduled once", e);
        }
        // Run count is the information-theoretic minimum given the anchor.
        let distinct: std::collections::BTreeSet<_> = events
            .iter()
            .filter(|e| !e.is_fixed() && **e != PmuEvent::InstRetired)
            .collect();
        let min_runs = distinct.len().div_ceil(PMU_SLOTS - 1).max(1);
        prop_assert_eq!(plan.required_runs(), min_runs);
    }

    /// Collection through the bank merges to exactly the truth for the
    /// requested events, for arbitrary (deterministic) counter values.
    #[test]
    fn collect_is_lossless(events in event_subset(), seed in any::<u64>()) {
        let stats = UarchStats {
            cpu_cycles: seed | 1,
            inst_retired: seed.rotate_left(7) | 1,
            l1d_cache: seed.rotate_left(13),
            l1d_cache_refill: seed.rotate_left(17) % 1000,
            cap_mem_access_rd: seed.rotate_left(23) % 5000,
            dtlb_walk: seed.rotate_left(29) % 100,
            ..UarchStats::default()
        };
        let truth = EventCounts::from_uarch(&stats);
        let plan = MultiplexedSession::plan(&events);
        let merged = plan
            .collect(|_| Ok::<_, std::convert::Infallible>(stats))
            .unwrap();
        for e in &events {
            prop_assert_eq!(merged.get(*e), truth.get(*e), "{}", e);
        }
    }

    /// The bank never reads events it was not programmed with (other than
    /// the fixed cycle counter).
    #[test]
    fn bank_isolation(prog_idx in proptest::collection::vec(1usize..PmuEvent::ALL.len(), 1..=5)) {
        let mut programmed: Vec<PmuEvent> =
            prog_idx.iter().map(|i| PmuEvent::ALL[*i]).collect();
        programmed.dedup();
        let mut bank = PmuBank::new();
        if bank.program(&programmed).is_err() {
            // Duplicates after indexing collisions: acceptable rejection.
            return Ok(());
        }
        let stats = UarchStats {
            cpu_cycles: 42,
            inst_retired: 43,
            ld_spec: 44,
            st_spec: 45,
            ..UarchStats::default()
        };
        let truth = EventCounts::from_uarch(&stats);
        let read = bank.read(&truth);
        for (e, _) in read.iter() {
            prop_assert!(
                e.is_fixed() || programmed.contains(&e),
                "{} leaked through the bank", e
            );
        }
    }
}
