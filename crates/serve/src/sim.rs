//! The service scheduler: a deterministic discrete-event simulation of
//! a multi-core request server in simulated cycles.
//!
//! Requests arrive open-loop from an [`ArrivalGen`], queue per tenant
//! behind a bounded admission queue (backpressure: a full queue drops
//! the arrival), and are dispatched to a fixed pool of cores by
//! **deficit round robin**: each visit to a non-empty tenant queue
//! credits `quantum × weight` cycles of deficit, and the head request
//! is served only when the accrued deficit covers its profiled service
//! demand. DRR gives byte-level (here: cycle-level) fairness — a tenant
//! sending heavyweight requests cannot starve tenants sending light
//! ones, which the fairness test in `tests/determinism.rs` locks.
//!
//! The simulation is a pure single-threaded function of its inputs
//! (profiles, tenant specs, config, offered load): simulated time comes
//! from the timing model's cycle counts, never from the host clock, so
//! every latency quantile is reproducible bit-for-bit whatever `--jobs`
//! the surrounding sweep uses.

use crate::arrival::{ArrivalGen, Request, SimRng, TrafficModel};
use crate::profile::{FaultClass, ShapeProfile};
use crate::tenant::{TenantCounters, TenantSpec, TenantState};
use cheri_isa::Abi;
use cheri_mem::HeapStats;
use morello_obs::LogHistogram;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Service-side configuration, constant across a load sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Cores serving requests.
    pub cores: usize,
    /// Bounded admission queue depth per tenant; arrivals beyond it are
    /// dropped (backpressure).
    pub queue_per_tenant: usize,
    /// DRR quantum in cycles credited per visit (scaled by tenant
    /// weight). Of the order of one mean service demand.
    pub quantum_cycles: u64,
    /// Background corruption rate: requests per million that carry an
    /// injected tag-clearing fault.
    pub fault_rate_ppm: u64,
    /// Stream seed (arrivals, tenant draws, shape draws, fault draws).
    pub seed: u64,
    /// Arrival process.
    pub traffic: TrafficModel,
}

/// One tenant's end-of-run outcome.
#[derive(Clone, Debug, Serialize)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Effective quarantine policy label (`classic` under hybrid).
    pub policy: &'static str,
    /// Service counters.
    pub counters: TenantCounters,
    /// Sojourn-time histogram in cycles.
    pub latency: LogHistogram,
    /// The tenant heap's cumulative statistics (quarantine high-water,
    /// revocation epochs, …).
    pub heap: HeapStats,
}

/// The outcome of one (ABI × offered-load) simulation cell.
#[derive(Clone, Debug, Serialize)]
pub struct SimResult {
    /// Requests emitted by the arrival process.
    pub arrivals: u64,
    /// Requests served with a correct response.
    pub completed: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Requests rejected because their shape was degraded in profiling.
    pub rejected: u64,
    /// Faulted requests that ended in an error (trap or crash).
    pub errors: u64,
    /// Faulted requests served with silently corrupted responses.
    pub silent: u64,
    /// Merged sojourn-time histogram over all tenants, in cycles
    /// (responses only: completed + silent).
    pub latency: LogHistogram,
    /// Simulated cycle of the last event (run length).
    pub sim_cycles: u64,
    /// Per-tenant outcomes, in spec order.
    pub tenants: Vec<TenantOutcome>,
}

impl SimResult {
    /// Responses per simulated second (completed + silent over the run
    /// length).
    pub fn throughput_rps(&self, clock_hz: f64) -> f64 {
        if self.sim_cycles == 0 {
            return 0.0;
        }
        (self.completed + self.silent) as f64 / (self.sim_cycles as f64 / clock_hz)
    }
}

/// A request in service on some core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct InFlight {
    finish: u64,
    seq: u64,
    tenant: usize,
    shape: usize,
    arrival: u64,
    faulted: bool,
}

/// Runs one simulation cell: `requests` arrivals at `offered_rps`
/// against the profiled shapes, under `abi`'s tenant heaps.
///
/// # Panics
///
/// Panics when `profiles` is empty or every shape is degraded (the
/// sweep driver filters such ABIs out before simulating).
pub fn simulate(
    config: &ServiceConfig,
    profiles: &[ShapeProfile],
    specs: &[TenantSpec],
    abi: Abi,
    offered_rps: f64,
    clock_ghz: f64,
    requests: u64,
) -> SimResult {
    assert!(
        profiles.iter().any(|p| !p.degraded),
        "no runnable shapes to serve"
    );
    let shares: Vec<f64> = specs.iter().map(|s| s.traffic_share).collect();
    let mut gen = ArrivalGen::new(
        config.seed,
        config.traffic,
        offered_rps,
        clock_ghz,
        &shares,
        profiles.len(),
    );
    let mut tenants: Vec<TenantState> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            TenantState::new(s, abi, SimRng::new(config.seed ^ (i as u64 + 1)).next_u64())
        })
        .collect();
    let mut queues: Vec<VecDeque<Request>> = vec![VecDeque::new(); specs.len()];
    let mut deficit: Vec<u64> = vec![0; specs.len()];
    let mut inflight: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
    let mut cursor = 0_usize;
    let mut free_cores = config.cores;
    let mut queued = 0_usize;
    let mut seq = 0_u64;
    let mut arrivals = 0_u64;
    let mut sim_cycles = 0_u64;
    let fault_p = config.fault_rate_ppm as f64 / 1e6;

    let mut next_arrival = (arrivals < requests).then(|| gen.next_request());

    loop {
        let t_arr = next_arrival.as_ref().map(|r| r.arrival);
        let t_done = inflight.peek().map(|Reverse(f)| f.finish);
        // Completions win ties so a core freed at cycle t can serve an
        // arrival at cycle t in the same dispatch pass.
        let now = match (t_arr, t_done) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(d)) => d,
            (Some(a), Some(d)) => a.min(d),
        };
        sim_cycles = sim_cycles.max(now);

        while let Some(Reverse(top)) = inflight.peek() {
            if top.finish > now {
                break;
            }
            let Reverse(f) = inflight.pop().expect("peeked");
            free_cores += 1;
            let tenant = &mut tenants[f.tenant];
            let profile = &profiles[f.shape];
            let served = if f.faulted {
                match profile.fault.map(|fp| fp.class) {
                    Some(FaultClass::Silent) => {
                        tenant.counters.silent += 1;
                        true
                    }
                    Some(FaultClass::Benign) | None => {
                        tenant.counters.completed += 1;
                        true
                    }
                    Some(FaultClass::Trapped) | Some(FaultClass::Crashed) => {
                        tenant.counters.errors += 1;
                        false
                    }
                }
            } else {
                tenant.counters.completed += 1;
                true
            };
            if served {
                tenant.latency.record(f.finish - f.arrival);
                tenant.churn(profile.allocs);
            }
        }

        while let Some(req) = next_arrival.take() {
            if req.arrival > now {
                next_arrival = Some(req);
                break;
            }
            arrivals += 1;
            if arrivals < requests {
                next_arrival = Some(gen.next_request());
            }
            let tenant = &mut tenants[req.tenant];
            if profiles[req.shape].degraded {
                tenant.counters.rejected += 1;
            } else if queues[req.tenant].len() >= config.queue_per_tenant {
                tenant.counters.dropped += 1;
            } else {
                queues[req.tenant].push_back(req);
                queued += 1;
            }
        }

        // DRR dispatch: visit tenant queues round-robin from the cursor,
        // crediting deficit and serving heads the credit covers.
        while free_cores > 0 && queued > 0 {
            let t = cursor;
            cursor = (cursor + 1) % queues.len();
            if queues[t].is_empty() {
                deficit[t] = 0;
                continue;
            }
            deficit[t] = deficit[t].saturating_add(
                config
                    .quantum_cycles
                    .saturating_mul(u64::from(specs[t].weight.max(1))),
            );
            while free_cores > 0 {
                let Some(head) = queues[t].front() else {
                    deficit[t] = 0;
                    break;
                };
                let faulted = head.fault_draw < fault_p && profiles[head.shape].fault.is_some();
                let cost = if faulted {
                    profiles[head.shape].fault.expect("checked").cycles
                } else {
                    profiles[head.shape].service_cycles
                }
                .max(1);
                if deficit[t] < cost {
                    break;
                }
                deficit[t] -= cost;
                let req = queues[t].pop_front().expect("front checked");
                queued -= 1;
                free_cores -= 1;
                let start = now.max(req.arrival);
                inflight.push(Reverse(InFlight {
                    finish: start + cost,
                    seq,
                    tenant: req.tenant,
                    shape: req.shape,
                    arrival: req.arrival,
                    faulted,
                }));
                seq += 1;
            }
        }
    }

    let mut latency = LogHistogram::new();
    let mut totals = TenantCounters::default();
    let tenants: Vec<TenantOutcome> = tenants
        .into_iter()
        .map(|t| {
            latency.merge(&t.latency);
            totals.completed += t.counters.completed;
            totals.dropped += t.counters.dropped;
            totals.rejected += t.counters.rejected;
            totals.errors += t.counters.errors;
            totals.silent += t.counters.silent;
            TenantOutcome {
                name: t.spec.name.clone(),
                policy: t.effective_policy().name(),
                heap: t.heap_stats(),
                counters: t.counters.clone(),
                latency: t.latency.clone(),
            }
        })
        .collect();
    SimResult {
        arrivals,
        completed: totals.completed,
        dropped: totals.dropped,
        rejected: totals.rejected,
        errors: totals.errors,
        silent: totals.silent,
        latency,
        sim_cycles,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(key: &str, cycles: u64) -> ShapeProfile {
        ShapeProfile {
            key: key.into(),
            abi: Abi::Purecap,
            degraded: false,
            service_cycles: cycles,
            retired: cycles,
            allocs: 4,
            attempts: 1,
            fault: None,
        }
    }

    fn config(seed: u64) -> ServiceConfig {
        ServiceConfig {
            cores: 2,
            queue_per_tenant: 64,
            quantum_cycles: 1_000_000,
            fault_rate_ppm: 0,
            seed,
            traffic: TrafficModel::Poisson,
        }
    }

    fn tenants(n: usize) -> Vec<TenantSpec> {
        crate::tenant::default_tenants(n)
    }

    #[test]
    fn light_load_completes_everything_and_is_deterministic() {
        let profiles = vec![profile("a", 500_000), profile("b", 1_500_000)];
        let specs = tenants(3);
        // Capacity = 2 cores / 1e6 mean cycles at 2.5 GHz = 5000 rps;
        // offer a tenth of it.
        let run = || {
            simulate(
                &config(5),
                &profiles,
                &specs,
                Abi::Purecap,
                500.0,
                2.5,
                2_000,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.arrivals, 2_000);
        assert_eq!(a.completed, 2_000);
        assert_eq!(a.dropped + a.rejected + a.errors + a.silent, 0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // At a tenth of capacity queueing is rare: p50 stays near the
        // bare service demand.
        assert!(a.latency.quantile(0.5) < 4_000_000);
    }

    #[test]
    fn overload_saturates_and_drops() {
        let profiles = vec![profile("a", 1_000_000)];
        let specs = tenants(2);
        let light = simulate(
            &config(9),
            &profiles,
            &specs,
            Abi::Purecap,
            1_000.0,
            2.5,
            3_000,
        );
        let heavy = simulate(
            &config(9),
            &profiles,
            &specs,
            Abi::Purecap,
            20_000.0,
            2.5,
            3_000,
        );
        let clock = 2.5e9;
        // Below capacity (5000 rps): throughput tracks the offered rate.
        let light_tp = light.throughput_rps(clock);
        assert!(
            (light_tp - 1_000.0).abs() / 1_000.0 < 0.1,
            "light {light_tp}"
        );
        // Far above capacity: throughput plateaus at ~capacity and the
        // bounded queues shed the excess.
        let heavy_tp = heavy.throughput_rps(clock);
        assert!(heavy_tp < 6_000.0, "plateau breached: {heavy_tp}");
        assert!(heavy.dropped > 0, "backpressure must drop");
        // Tail latency explodes across saturation.
        assert!(heavy.latency.quantile(0.999) > light.latency.quantile(0.999));
    }

    #[test]
    fn degraded_shapes_are_rejected_not_served() {
        let mut bad = profile("bad", 0);
        bad.degraded = true;
        bad.service_cycles = 0;
        let profiles = vec![profile("ok", 1_000_000), bad];
        let r = simulate(
            &config(3),
            &profiles,
            &tenants(1),
            Abi::Purecap,
            1_000.0,
            2.5,
            1_000,
        );
        assert!(r.rejected > 300, "about half the draws hit the bad shape");
        assert_eq!(r.completed + r.rejected + r.dropped, 1_000);
    }

    #[test]
    fn faulted_requests_split_by_class() {
        let mut p = profile("f", 1_000_000);
        p.fault = Some(crate::profile::FaultProfile {
            cycles: 200_000,
            class: FaultClass::Trapped,
        });
        let mut cfg = config(17);
        cfg.fault_rate_ppm = 200_000; // 20% of requests faulted
        let r = simulate(
            &cfg,
            &[p.clone()],
            &tenants(2),
            Abi::Purecap,
            1_000.0,
            2.5,
            2_000,
        );
        assert!(r.errors > 250, "~20% should trap, got {}", r.errors);
        assert_eq!(r.silent, 0);
        assert_eq!(r.completed + r.errors, 2_000);
        // Silent class instead: responses count, corruption is tallied.
        let mut p2 = p;
        p2.fault = Some(crate::profile::FaultProfile {
            cycles: 1_000_000,
            class: FaultClass::Silent,
        });
        let r2 = simulate(&cfg, &[p2], &tenants(2), Abi::Purecap, 1_000.0, 2.5, 2_000);
        assert!(r2.silent > 250);
        assert_eq!(r2.errors, 0);
    }
}
