//! Seeded chaos campaigns: deterministic adversity for the serving
//! simulator.
//!
//! A [`ChaosPlan`] is a set of time-windowed events injected into one
//! simulation cell: **fault storms** (the background corruption rate
//! burst to a storm rate between two cycle boundaries), **heap-pressure
//! spikes** (one tenant's per-request allocation churn multiplied,
//! driving its quarantine machinery hot), and **core outages** (cores
//! removed from the dispatch pool, no preemption of in-flight work).
//! All window boundaries are splitmix64-jittered from the cell's seed —
//! never from scheduling or the host clock — so a chaos campaign is as
//! byte-identical across `--jobs` counts as every other campaign in the
//! repo.
//!
//! The plan is purely declarative: the event loop in
//! [`crate::resilience`] queries it (`fault_ppm_at`, `cores_down_at`,
//! `churn_mult_at`) and wakes at its [`ChaosPlan::boundaries`] so an
//! outage ending between two request events still restarts dispatch on
//! time.

use crate::arrival::SimRng;
use serde::{Deserialize, Serialize};

/// A time-windowed burst of elevated background corruption.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultStorm {
    /// First cycle of the storm (inclusive).
    pub start: u64,
    /// First cycle after the storm (exclusive).
    pub end: u64,
    /// Corruption rate inside the window, requests per million.
    pub fault_ppm: u64,
}

/// A heap-pressure spike: one tenant's churn multiplied for a window.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HeapSpike {
    /// First cycle of the spike (inclusive).
    pub start: u64,
    /// First cycle after the spike (exclusive).
    pub end: u64,
    /// The tenant whose heap is pressured.
    pub tenant: usize,
    /// Churn multiplier (≥ 1) applied per completed request.
    pub churn_mult: u32,
}

/// A core outage: cores removed from the dispatch pool for a window.
/// In-flight requests are never preempted; the pool only shrinks for
/// *new* dispatches.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CoreOutage {
    /// First cycle of the outage (inclusive).
    pub start: u64,
    /// First cycle after the outage (exclusive).
    pub end: u64,
    /// Cores down during the window.
    pub cores_down: usize,
}

/// One cell's chaos campaign: every adversity window the cell endures.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Fault-rate bursts.
    pub storms: Vec<FaultStorm>,
    /// Tenant heap-pressure spikes.
    pub heap_spikes: Vec<HeapSpike>,
    /// Core outages.
    pub outages: Vec<CoreOutage>,
}

impl ChaosPlan {
    /// The empty plan: no adversity beyond the configured background.
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.storms.is_empty() && self.heap_spikes.is_empty() && self.outages.is_empty()
    }

    /// The standard fig. 12 storm campaign over a run of roughly
    /// `horizon` cycles: one fault storm at `storm_ppm` covering about
    /// the 30–55 % span of the run, a heap-pressure spike against a
    /// seeded tenant over the storm's first half, and a one-core outage
    /// inside the storm. Every boundary is splitmix64-jittered (±1 % of
    /// the horizon) from `seed`, so two cells with the same coordinates
    /// get the same storm and different seeds get different ones.
    /// `storm_ppm == 0` returns the empty plan.
    pub fn storm_campaign(seed: u64, horizon: u64, storm_ppm: u64, tenants: usize) -> ChaosPlan {
        if storm_ppm == 0 || horizon == 0 {
            return ChaosPlan::none();
        }
        let mut rng = SimRng::new(seed);
        // ±1% jitter around a fraction of the horizon, in per-mille.
        let mut at = |mille: u64| -> u64 {
            let base = (horizon / 1000).saturating_mul(mille);
            let jitter_span = (horizon / 50).max(1); // 2% wide, centred
            base.saturating_add(rng.below(jitter_span))
                .saturating_sub(jitter_span / 2)
                .max(1)
        };
        let start = at(300);
        let end = at(550).max(start + 1);
        let spike_end = at(430).clamp(start + 1, end);
        let out_start = at(350).clamp(start, end.saturating_sub(1));
        let out_end = at(450).clamp(out_start + 1, end);
        let spike_tenant = if tenants == 0 {
            0
        } else {
            rng.below(tenants as u64) as usize
        };
        ChaosPlan {
            storms: vec![FaultStorm {
                start,
                end,
                fault_ppm: storm_ppm,
            }],
            heap_spikes: vec![HeapSpike {
                start,
                end: spike_end,
                tenant: spike_tenant,
                churn_mult: 4,
            }],
            outages: vec![CoreOutage {
                start: out_start,
                end: out_end,
                cores_down: 1,
            }],
        }
    }

    /// The effective corruption rate at `now`: the max of the
    /// background rate and every active storm.
    pub fn fault_ppm_at(&self, now: u64, background_ppm: u64) -> u64 {
        self.storms
            .iter()
            .filter(|s| s.start <= now && now < s.end)
            .map(|s| s.fault_ppm)
            .fold(background_ppm, u64::max)
    }

    /// The churn multiplier for `tenant` at `now` (1 outside spikes).
    pub fn churn_mult_at(&self, now: u64, tenant: usize) -> u32 {
        self.heap_spikes
            .iter()
            .filter(|s| s.tenant == tenant && s.start <= now && now < s.end)
            .map(|s| s.churn_mult.max(1))
            .fold(1, u32::max)
    }

    /// Cores down at `now` (summed over active outages).
    pub fn cores_down_at(&self, now: u64) -> usize {
        self.outages
            .iter()
            .filter(|o| o.start <= now && now < o.end)
            .map(|o| o.cores_down)
            .sum()
    }

    /// Every window boundary, sorted and deduplicated — the cycles the
    /// event loop must wake at even if no request event lands there
    /// (an outage ending must restart dispatch).
    pub fn boundaries(&self) -> Vec<u64> {
        let mut b: Vec<u64> = self
            .storms
            .iter()
            .flat_map(|s| [s.start, s.end])
            .chain(self.heap_spikes.iter().flat_map(|s| [s.start, s.end]))
            .chain(self.outages.iter().flat_map(|o| [o.start, o.end]))
            .collect();
        b.sort_unstable();
        b.dedup();
        b
    }

    /// The first storm's window, when one exists.
    pub fn storm_window(&self) -> Option<(u64, u64)> {
        self.storms.first().map(|s| (s.start, s.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = ChaosPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.fault_ppm_at(123, 777), 777);
        assert_eq!(p.churn_mult_at(123, 0), 1);
        assert_eq!(p.cores_down_at(123), 0);
        assert!(p.boundaries().is_empty());
        assert_eq!(
            ChaosPlan::storm_campaign(9, 1_000_000, 0, 3).boundaries(),
            []
        );
    }

    #[test]
    fn storm_campaign_is_seed_deterministic_and_windowed() {
        let a = ChaosPlan::storm_campaign(42, 10_000_000, 250_000, 3);
        let b = ChaosPlan::storm_campaign(42, 10_000_000, 250_000, 3);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = ChaosPlan::storm_campaign(43, 10_000_000, 250_000, 3);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
        let (start, end) = a.storm_window().unwrap();
        assert!(start < end);
        // The storm sits in the interior of the run.
        assert!(start > 10_000_000 / 5, "start {start}");
        assert!(end < 10_000_000 * 7 / 10, "end {end}");
        // Inside the storm the rate is the storm rate; outside it the
        // background survives.
        assert_eq!(a.fault_ppm_at(start, 100), 250_000);
        assert_eq!(a.fault_ppm_at(end, 100), 100);
        assert_eq!(a.fault_ppm_at(0, 100), 100);
        // Exactly one core goes down, inside the storm.
        let o = a.outages[0];
        assert!(o.start >= start && o.end <= end);
        assert_eq!(a.cores_down_at(o.start), 1);
        // The spike tenant is in range.
        assert!(a.heap_spikes[0].tenant < 3);
        assert!(a.churn_mult_at(a.heap_spikes[0].start, a.heap_spikes[0].tenant) > 1);
        // Boundaries are sorted and unique.
        let bounds = a.boundaries();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
