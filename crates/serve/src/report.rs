//! The load-sweep driver and the `BENCH_service.json` schema.
//!
//! [`run_service_sweep`] profiles the request shapes per ABI (phase A),
//! derives each ABI's analytic capacity, then simulates every
//! (ABI × offered-load) cell (phase B) on the work-stealing pool.
//! Offered loads are fixed *fractions of the hybrid ABI's capacity*, so
//! all three ABIs face the same absolute request rates and the
//! capability ABIs — whose per-request service demand is higher —
//! saturate at a measurably lower offered load, the serving-facing
//! restatement of the paper's throughput gap.
//!
//! Every cell is a pure function of the seed and the profile table, and
//! cells are reduced in cell order, so the report is byte-identical
//! whatever `--jobs` is — the property `bench_compare` and CI lock.

use crate::arrival::TrafficModel;
use crate::profile::{mean_service_cycles, profile_shapes, ShapeProfile};
use crate::sim::{simulate, ServiceConfig, SimResult};
use crate::tenant::{default_tenants, TenantSpec};
use cheri_isa::Abi;
use cheri_workloads::Scale;
use morello_sim::engine::{run_cells, CellOutcome};
use morello_sim::suite::select;
use morello_sim::Platform;
use serde::{Deserialize, Serialize};

/// Request shapes served: a pointer-light compressor, a pointer-chasing
/// simulator, a request-shaped database workload, and the allocator
/// stressor (the shape that exercises the tenant quarantines hardest).
pub const SHAPE_KEYS: [&str; 4] = ["xz_557", "omnetpp_520", "sqlite", "alloc_stress"];

/// Offered-load ratios (of hybrid capacity) for the quick sweep.
pub const QUICK_RATIOS: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 1.25];

/// Offered-load ratios for the full sweep.
pub const FULL_RATIOS: [f64; 9] = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5];

/// Sweep-level configuration (the knobs `fig11_service` exposes).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Quick mode: fewer load points, fewer requests per point.
    pub quick: bool,
    /// Worker threads for the profile and sweep pools (never affects
    /// results).
    pub jobs: usize,
    /// Master seed for arrival streams and fault campaigns.
    pub seed: u64,
    /// Number of tenants.
    pub tenants: usize,
    /// Serving cores.
    pub cores: usize,
    /// Background corruption rate in requests per million (0 disables
    /// the fault campaign entirely).
    pub fault_rate_ppm: u64,
    /// Arrival process.
    pub traffic: TrafficModel,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            quick: false,
            jobs: 1,
            seed: 0x5EE7_CE11,
            tenants: 3,
            cores: 4,
            fault_rate_ppm: 0,
            traffic: TrafficModel::Poisson,
        }
    }
}

impl SweepConfig {
    /// Requests simulated per load point.
    pub fn requests_per_point(&self) -> u64 {
        if self.quick {
            2_000
        } else {
            20_000
        }
    }

    /// The offered-load ratios swept.
    pub fn ratios(&self) -> &'static [f64] {
        if self.quick {
            &QUICK_RATIOS
        } else {
            &FULL_RATIOS
        }
    }
}

/// Per-tenant row of one load point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantPoint {
    /// Tenant name.
    pub tenant: String,
    /// Effective quarantine policy label.
    pub policy: String,
    /// Requests served correctly.
    pub completed: u64,
    /// Requests dropped at admission.
    pub dropped: u64,
    /// Requests rejected (degraded shape).
    pub rejected: u64,
    /// Faulted requests returning errors.
    pub errors: u64,
    /// Silently corrupted responses.
    pub silent: u64,
    /// Tenant p99 sojourn time in milliseconds.
    pub p99_ms: f64,
    /// Tenant quarantine high-water mark in bytes.
    pub quarantine_bytes_hwm: u64,
    /// Revocation epochs the tenant heap ran.
    pub revocation_epochs: u64,
    /// Allocation failures under quarantine pressure.
    pub heap_pressure: u64,
}

/// One (ABI × offered-load) row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Offered load as a fraction of hybrid capacity.
    pub offered_ratio: f64,
    /// Requests emitted by the arrival process.
    pub arrivals: u64,
    /// Requests served correctly.
    pub completed: u64,
    /// Requests dropped at admission (backpressure).
    pub dropped: u64,
    /// Requests rejected (degraded shape).
    pub rejected: u64,
    /// Faulted requests returning errors.
    pub errors: u64,
    /// Silently corrupted responses (hybrid's failure mode).
    pub silent: u64,
    /// Responses per simulated second.
    pub throughput_rps: f64,
    /// Simulated run length in seconds.
    pub sim_seconds: f64,
    /// Median sojourn time in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile sojourn time in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile sojourn time in milliseconds.
    pub p999_ms: f64,
    /// Worst sojourn time in milliseconds.
    pub max_ms: f64,
    /// Mean sojourn time in milliseconds.
    pub mean_ms: f64,
    /// Sum of tenant quarantine high-water marks in bytes.
    pub quarantine_bytes_hwm: u64,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantPoint>,
}

/// One ABI's sweep: capacity plus the per-load-point curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbiService {
    /// The ABI served.
    pub abi: Abi,
    /// Analytic capacity: `cores × clock / mean service cycles`.
    pub capacity_rps: f64,
    /// Mean per-request service demand in cycles (uniform shape mix).
    pub mean_service_cycles: f64,
    /// Highest offered load (rps) at which measured throughput stayed
    /// within 5% of offered — the measured saturation knee.
    pub saturation_offered_rps: f64,
    /// The shape profile table this sweep served from.
    pub profiles: Vec<ShapeProfile>,
    /// The load curve.
    pub points: Vec<LoadPoint>,
}

/// The `BENCH_service.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Schema version of this document.
    pub schema_version: u32,
    /// Document discriminator (`"service"`), how `bench_compare` tells
    /// this report apart from `BENCH_interp.json`.
    pub kind: String,
    /// Quick mode was used.
    pub quick: bool,
    /// Workload scale of the request shapes.
    pub scale: String,
    /// Serving cores.
    pub cores: usize,
    /// Admission queue depth per tenant.
    pub queue_per_tenant: usize,
    /// DRR quantum in cycles.
    pub quantum_cycles: u64,
    /// Requests per load point.
    pub requests_per_point: u64,
    /// Master seed.
    pub seed: u64,
    /// Arrival process label.
    pub traffic: String,
    /// Background corruption rate (requests per million).
    pub fault_rate_ppm: u64,
    /// Tenant specs served.
    pub tenants: Vec<TenantSpec>,
    /// Request-shape keys.
    pub shapes: Vec<String>,
    /// Offered-load ratios swept (of hybrid capacity).
    pub load_ratios: Vec<f64>,
    /// Per-ABI results.
    pub abis: Vec<AbiService>,
}

fn cycles_to_ms(cycles: u64, clock_hz: f64) -> f64 {
    cycles as f64 / clock_hz * 1e3
}

fn load_point(r: &SimResult, offered_rps: f64, ratio: f64, clock_hz: f64) -> LoadPoint {
    LoadPoint {
        offered_rps,
        offered_ratio: ratio,
        arrivals: r.arrivals,
        completed: r.completed,
        dropped: r.dropped,
        rejected: r.rejected,
        errors: r.errors,
        silent: r.silent,
        throughput_rps: r.throughput_rps(clock_hz),
        sim_seconds: r.sim_cycles as f64 / clock_hz,
        p50_ms: cycles_to_ms(r.latency.quantile(0.50), clock_hz),
        p99_ms: cycles_to_ms(r.latency.quantile(0.99), clock_hz),
        p999_ms: cycles_to_ms(r.latency.quantile(0.999), clock_hz),
        max_ms: cycles_to_ms(r.latency.max(), clock_hz),
        mean_ms: r.latency.mean() / clock_hz * 1e3,
        quarantine_bytes_hwm: r.tenants.iter().map(|t| t.heap.quarantine_bytes_hwm).sum(),
        tenants: r
            .tenants
            .iter()
            .map(|t| TenantPoint {
                tenant: t.name.clone(),
                policy: t.policy.to_owned(),
                completed: t.counters.completed,
                dropped: t.counters.dropped,
                rejected: t.counters.rejected,
                errors: t.counters.errors,
                silent: t.counters.silent,
                p99_ms: cycles_to_ms(t.latency.quantile(0.99), clock_hz),
                quarantine_bytes_hwm: t.heap.quarantine_bytes_hwm,
                revocation_epochs: t.heap.revocation_epochs,
                heap_pressure: t.counters.heap_pressure,
            })
            .collect(),
    }
}

/// Runs the full sweep: profile each ABI's shapes, derive capacities,
/// simulate every (ABI × load ratio) cell, and assemble the report.
///
/// # Panics
///
/// Panics if the hybrid profile table is entirely degraded (no capacity
/// to anchor the sweep on) or a pool worker panics.
pub fn run_service_sweep(cfg: &SweepConfig) -> ServiceReport {
    let platform = Platform::morello().with_scale(Scale::Test);
    let clock_hz = platform.uarch.clock_ghz * 1e9;
    let shapes = select(&SHAPE_KEYS);
    let fault_seed = (cfg.fault_rate_ppm > 0).then_some(cfg.seed ^ 0xFA17);

    // Phase A: profile every ABI's shape table (cells are independent).
    let abi_profiles: Vec<(Abi, Vec<ShapeProfile>)> = {
        let outcomes = run_cells(Abi::ALL.len(), cfg.jobs, |i| {
            let abi = Abi::ALL[i];
            (abi, profile_shapes(platform, &shapes, abi, 1, fault_seed))
        });
        outcomes
            .into_iter()
            .map(|o| match o {
                CellOutcome::Done(v) => v,
                CellOutcome::Panicked(msg) => panic!("profile cell panicked: {msg}"),
            })
            .collect()
    };

    let hybrid_mean = abi_profiles
        .iter()
        .find(|(abi, _)| *abi == Abi::Hybrid)
        .and_then(|(_, p)| mean_service_cycles(p))
        .expect("hybrid shapes must profile");
    let hybrid_capacity = cfg.cores as f64 * clock_hz / hybrid_mean;

    let ratios = cfg.ratios();
    let requests = cfg.requests_per_point();
    let specs = default_tenants(cfg.tenants);
    // Quantum of one hybrid mean service demand: a visit's credit buys
    // roughly one median request, the classic DRR setting.
    let quantum = hybrid_mean as u64 + 1;
    let service = ServiceConfig {
        cores: cfg.cores,
        queue_per_tenant: 256,
        quantum_cycles: quantum,
        fault_rate_ppm: cfg.fault_rate_ppm,
        seed: cfg.seed,
        traffic: cfg.traffic,
    };

    // Phase B: one pure cell per (ABI × ratio).
    let n_cells = abi_profiles.len() * ratios.len();
    let outcomes = run_cells(n_cells, cfg.jobs, |i| {
        let (abi, profiles) = &abi_profiles[i / ratios.len()];
        let ratio = ratios[i % ratios.len()];
        let offered = hybrid_capacity * ratio;
        let r = simulate(
            &service,
            profiles,
            &specs,
            *abi,
            offered,
            platform.uarch.clock_ghz,
            requests,
        );
        load_point(&r, offered, ratio, clock_hz)
    });
    let mut points: Vec<LoadPoint> = outcomes
        .into_iter()
        .map(|o| match o {
            CellOutcome::Done(p) => p,
            CellOutcome::Panicked(msg) => panic!("sweep cell panicked: {msg}"),
        })
        .collect();

    let abis = abi_profiles
        .into_iter()
        .map(|(abi, profiles)| {
            let abi_points: Vec<LoadPoint> = points.drain(..ratios.len()).collect();
            let mean = mean_service_cycles(&profiles).unwrap_or(0.0);
            let capacity = if mean > 0.0 {
                cfg.cores as f64 * clock_hz / mean
            } else {
                0.0
            };
            let saturation = abi_points
                .iter()
                .filter(|p| p.throughput_rps >= 0.95 * p.offered_rps)
                .map(|p| p.offered_rps)
                .fold(0.0, f64::max);
            AbiService {
                abi,
                capacity_rps: capacity,
                mean_service_cycles: mean,
                saturation_offered_rps: saturation,
                profiles,
                points: abi_points,
            }
        })
        .collect();

    ServiceReport {
        schema_version: 1,
        kind: "service".to_owned(),
        quick: cfg.quick,
        scale: format!("{:?}", Scale::Test),
        cores: cfg.cores,
        queue_per_tenant: service.queue_per_tenant,
        quantum_cycles: quantum,
        requests_per_point: requests,
        seed: cfg.seed,
        traffic: cfg.traffic.label().to_owned(),
        fault_rate_ppm: cfg.fault_rate_ppm,
        tenants: specs,
        shapes: SHAPE_KEYS.iter().map(|s| (*s).to_owned()).collect(),
        load_ratios: ratios.to_vec(),
        abis,
    }
}

/// The deterministic metrics `bench_compare` gates on: per-ABI capacity
/// plus throughput and p99 at every load point. All of these are pure
/// functions of the seed, so any drift is a real model change.
pub fn service_metrics(report: &ServiceReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for a in &report.abis {
        out.push((format!("{}.capacity_rps", a.abi), a.capacity_rps));
        for p in &a.points {
            out.push((
                format!("{}.r{:.2}.throughput_rps", a.abi, p.offered_ratio),
                p.throughput_rps,
            ));
            out.push((
                format!("{}.r{:.2}.p99_ms", a.abi, p.offered_ratio),
                p.p99_ms,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_unique() {
        let report = ServiceReport {
            schema_version: 1,
            kind: "service".into(),
            quick: true,
            scale: "Test".into(),
            cores: 4,
            queue_per_tenant: 256,
            quantum_cycles: 1,
            requests_per_point: 1,
            seed: 0,
            traffic: "poisson".into(),
            fault_rate_ppm: 0,
            tenants: default_tenants(2),
            shapes: vec!["xz_557".into()],
            load_ratios: vec![0.5, 1.0],
            abis: vec![AbiService {
                abi: Abi::Hybrid,
                capacity_rps: 1.0,
                mean_service_cycles: 1.0,
                saturation_offered_rps: 1.0,
                profiles: Vec::new(),
                points: Vec::new(),
            }],
        };
        let metrics = service_metrics(&report);
        let mut names: Vec<&String> = metrics.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), metrics.len());
    }
}
