//! The load-sweep driver and the `BENCH_service.json` schema.
//!
//! [`run_service_sweep`] profiles the request shapes per ABI (phase A),
//! derives each ABI's analytic capacity, then simulates every
//! (ABI × offered-load) cell (phase B) on the work-stealing pool.
//! Offered loads are fixed *fractions of the hybrid ABI's capacity*, so
//! all three ABIs face the same absolute request rates and the
//! capability ABIs — whose per-request service demand is higher —
//! saturate at a measurably lower offered load, the serving-facing
//! restatement of the paper's throughput gap.
//!
//! Every cell is a pure function of the seed and the profile table, and
//! cells are reduced in cell order, so the report is byte-identical
//! whatever `--jobs` is — the property `bench_compare` and CI lock.

use crate::arrival::{SimRng, TrafficModel};
use crate::chaos::ChaosPlan;
use crate::profile::{mean_service_cycles, profile_shapes, ShapeProfile};
use crate::resilience::{
    simulate_resilient, ResiliencePolicy, ResilientSimParams, ResilientSimResult, WindowPoint,
};
use crate::sim::{simulate, ServiceConfig, SimResult};
use crate::tenant::{default_tenants, TenantSpec};
use cheri_isa::Abi;
use cheri_workloads::Scale;
use morello_sim::engine::{run_cells, CellOutcome};
use morello_sim::suite::select;
use morello_sim::Platform;
use serde::{Deserialize, Serialize};

/// Request shapes served: a pointer-light compressor, a pointer-chasing
/// simulator, a request-shaped database workload, and the allocator
/// stressor (the shape that exercises the tenant quarantines hardest).
pub const SHAPE_KEYS: [&str; 4] = ["xz_557", "omnetpp_520", "sqlite", "alloc_stress"];

/// Offered-load ratios (of hybrid capacity) for the quick sweep.
pub const QUICK_RATIOS: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 1.25];

/// Offered-load ratios for the full sweep.
pub const FULL_RATIOS: [f64; 9] = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5];

/// Sweep-level configuration (the knobs `fig11_service` exposes).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Quick mode: fewer load points, fewer requests per point.
    pub quick: bool,
    /// Worker threads for the profile and sweep pools (never affects
    /// results).
    pub jobs: usize,
    /// Master seed for arrival streams and fault campaigns.
    pub seed: u64,
    /// Number of tenants.
    pub tenants: usize,
    /// Serving cores.
    pub cores: usize,
    /// Background corruption rate in requests per million (0 disables
    /// the fault campaign entirely).
    pub fault_rate_ppm: u64,
    /// Arrival process.
    pub traffic: TrafficModel,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            quick: false,
            jobs: 1,
            seed: 0x5EE7_CE11,
            tenants: 3,
            cores: 4,
            fault_rate_ppm: 0,
            traffic: TrafficModel::Poisson,
        }
    }
}

impl SweepConfig {
    /// Requests simulated per load point.
    pub fn requests_per_point(&self) -> u64 {
        if self.quick {
            2_000
        } else {
            20_000
        }
    }

    /// The offered-load ratios swept.
    pub fn ratios(&self) -> &'static [f64] {
        if self.quick {
            &QUICK_RATIOS
        } else {
            &FULL_RATIOS
        }
    }
}

/// Per-tenant row of one load point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantPoint {
    /// Tenant name.
    pub tenant: String,
    /// Effective quarantine policy label.
    pub policy: String,
    /// Requests served correctly.
    pub completed: u64,
    /// Requests dropped at admission.
    pub dropped: u64,
    /// Requests rejected (degraded shape).
    pub rejected: u64,
    /// Faulted requests returning errors.
    pub errors: u64,
    /// Silently corrupted responses.
    pub silent: u64,
    /// Tenant p99 sojourn time in milliseconds.
    pub p99_ms: f64,
    /// Tenant quarantine high-water mark in bytes.
    pub quarantine_bytes_hwm: u64,
    /// Revocation epochs the tenant heap ran.
    pub revocation_epochs: u64,
    /// Allocation failures under quarantine pressure.
    pub heap_pressure: u64,
}

/// One (ABI × offered-load) row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Offered load as a fraction of hybrid capacity.
    pub offered_ratio: f64,
    /// Requests emitted by the arrival process.
    pub arrivals: u64,
    /// Requests served correctly.
    pub completed: u64,
    /// Requests dropped at admission (backpressure).
    pub dropped: u64,
    /// Requests rejected (degraded shape).
    pub rejected: u64,
    /// Faulted requests returning errors.
    pub errors: u64,
    /// Silently corrupted responses (hybrid's failure mode).
    pub silent: u64,
    /// Responses per simulated second.
    pub throughput_rps: f64,
    /// Simulated run length in seconds.
    pub sim_seconds: f64,
    /// Median sojourn time in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile sojourn time in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile sojourn time in milliseconds.
    pub p999_ms: f64,
    /// Worst sojourn time in milliseconds.
    pub max_ms: f64,
    /// Mean sojourn time in milliseconds.
    pub mean_ms: f64,
    /// Sum of tenant quarantine high-water marks in bytes.
    pub quarantine_bytes_hwm: u64,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantPoint>,
}

/// One ABI's sweep: capacity plus the per-load-point curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbiService {
    /// The ABI served.
    pub abi: Abi,
    /// Analytic capacity: `cores × clock / mean service cycles`.
    pub capacity_rps: f64,
    /// Mean per-request service demand in cycles (uniform shape mix).
    pub mean_service_cycles: f64,
    /// Highest offered load (rps) at which measured throughput stayed
    /// within 5% of offered — the measured saturation knee.
    pub saturation_offered_rps: f64,
    /// The shape profile table this sweep served from.
    pub profiles: Vec<ShapeProfile>,
    /// The load curve.
    pub points: Vec<LoadPoint>,
}

/// The `BENCH_service.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Schema version of this document.
    pub schema_version: u32,
    /// Document discriminator (`"service"`), how `bench_compare` tells
    /// this report apart from `BENCH_interp.json`.
    pub kind: String,
    /// Quick mode was used.
    pub quick: bool,
    /// Workload scale of the request shapes.
    pub scale: String,
    /// Serving cores.
    pub cores: usize,
    /// Admission queue depth per tenant.
    pub queue_per_tenant: usize,
    /// DRR quantum in cycles.
    pub quantum_cycles: u64,
    /// Requests per load point.
    pub requests_per_point: u64,
    /// Master seed.
    pub seed: u64,
    /// Arrival process label.
    pub traffic: String,
    /// Background corruption rate (requests per million).
    pub fault_rate_ppm: u64,
    /// Tenant specs served.
    pub tenants: Vec<TenantSpec>,
    /// Request-shape keys.
    pub shapes: Vec<String>,
    /// Offered-load ratios swept (of hybrid capacity).
    pub load_ratios: Vec<f64>,
    /// Per-ABI results.
    pub abis: Vec<AbiService>,
}

fn cycles_to_ms(cycles: u64, clock_hz: f64) -> f64 {
    cycles as f64 / clock_hz * 1e3
}

fn load_point(r: &SimResult, offered_rps: f64, ratio: f64, clock_hz: f64) -> LoadPoint {
    LoadPoint {
        offered_rps,
        offered_ratio: ratio,
        arrivals: r.arrivals,
        completed: r.completed,
        dropped: r.dropped,
        rejected: r.rejected,
        errors: r.errors,
        silent: r.silent,
        throughput_rps: r.throughput_rps(clock_hz),
        sim_seconds: r.sim_cycles as f64 / clock_hz,
        p50_ms: cycles_to_ms(r.latency.quantile(0.50), clock_hz),
        p99_ms: cycles_to_ms(r.latency.quantile(0.99), clock_hz),
        p999_ms: cycles_to_ms(r.latency.quantile(0.999), clock_hz),
        max_ms: cycles_to_ms(r.latency.max(), clock_hz),
        mean_ms: r.latency.mean() / clock_hz * 1e3,
        quarantine_bytes_hwm: r.tenants.iter().map(|t| t.heap.quarantine_bytes_hwm).sum(),
        tenants: r
            .tenants
            .iter()
            .map(|t| TenantPoint {
                tenant: t.name.clone(),
                policy: t.policy.to_owned(),
                completed: t.counters.completed,
                dropped: t.counters.dropped,
                rejected: t.counters.rejected,
                errors: t.counters.errors,
                silent: t.counters.silent,
                p99_ms: cycles_to_ms(t.latency.quantile(0.99), clock_hz),
                quarantine_bytes_hwm: t.heap.quarantine_bytes_hwm,
                revocation_epochs: t.heap.revocation_epochs,
                heap_pressure: t.counters.heap_pressure,
            })
            .collect(),
    }
}

/// Runs the full sweep: profile each ABI's shapes, derive capacities,
/// simulate every (ABI × load ratio) cell, and assemble the report.
///
/// # Panics
///
/// Panics if the hybrid profile table is entirely degraded (no capacity
/// to anchor the sweep on) or a pool worker panics.
pub fn run_service_sweep(cfg: &SweepConfig) -> ServiceReport {
    let platform = Platform::morello().with_scale(Scale::Test);
    let clock_hz = platform.uarch.clock_ghz * 1e9;
    let shapes = select(&SHAPE_KEYS);
    let fault_seed = (cfg.fault_rate_ppm > 0).then_some(cfg.seed ^ 0xFA17);

    // Phase A: profile every ABI's shape table (cells are independent).
    let abi_profiles: Vec<(Abi, Vec<ShapeProfile>)> = {
        let outcomes = run_cells(Abi::ALL.len(), cfg.jobs, |i| {
            let abi = Abi::ALL[i];
            (abi, profile_shapes(platform, &shapes, abi, 1, fault_seed))
        });
        outcomes
            .into_iter()
            .map(|o| match o {
                CellOutcome::Done(v) => v,
                CellOutcome::Panicked(msg) => panic!("profile cell panicked: {msg}"),
            })
            .collect()
    };

    let hybrid_mean = abi_profiles
        .iter()
        .find(|(abi, _)| *abi == Abi::Hybrid)
        .and_then(|(_, p)| mean_service_cycles(p))
        .expect("hybrid shapes must profile");
    let hybrid_capacity = cfg.cores as f64 * clock_hz / hybrid_mean;

    let ratios = cfg.ratios();
    let requests = cfg.requests_per_point();
    let specs = default_tenants(cfg.tenants);
    // Quantum of one hybrid mean service demand: a visit's credit buys
    // roughly one median request, the classic DRR setting.
    let quantum = hybrid_mean as u64 + 1;
    let service = ServiceConfig {
        cores: cfg.cores,
        queue_per_tenant: 256,
        quantum_cycles: quantum,
        fault_rate_ppm: cfg.fault_rate_ppm,
        seed: cfg.seed,
        traffic: cfg.traffic,
    };

    // Phase B: one pure cell per (ABI × ratio).
    let n_cells = abi_profiles.len() * ratios.len();
    let outcomes = run_cells(n_cells, cfg.jobs, |i| {
        let (abi, profiles) = &abi_profiles[i / ratios.len()];
        let ratio = ratios[i % ratios.len()];
        let offered = hybrid_capacity * ratio;
        let r = simulate(
            &service,
            profiles,
            &specs,
            *abi,
            offered,
            platform.uarch.clock_ghz,
            requests,
        );
        load_point(&r, offered, ratio, clock_hz)
    });
    let mut points: Vec<LoadPoint> = outcomes
        .into_iter()
        .map(|o| match o {
            CellOutcome::Done(p) => p,
            CellOutcome::Panicked(msg) => panic!("sweep cell panicked: {msg}"),
        })
        .collect();

    let abis = abi_profiles
        .into_iter()
        .map(|(abi, profiles)| {
            let abi_points: Vec<LoadPoint> = points.drain(..ratios.len()).collect();
            let mean = mean_service_cycles(&profiles).unwrap_or(0.0);
            let capacity = if mean > 0.0 {
                cfg.cores as f64 * clock_hz / mean
            } else {
                0.0
            };
            let saturation = abi_points
                .iter()
                .filter(|p| p.throughput_rps >= 0.95 * p.offered_rps)
                .map(|p| p.offered_rps)
                .fold(0.0, f64::max);
            AbiService {
                abi,
                capacity_rps: capacity,
                mean_service_cycles: mean,
                saturation_offered_rps: saturation,
                profiles,
                points: abi_points,
            }
        })
        .collect();

    ServiceReport {
        schema_version: 1,
        kind: "service".to_owned(),
        quick: cfg.quick,
        scale: format!("{:?}", Scale::Test),
        cores: cfg.cores,
        queue_per_tenant: service.queue_per_tenant,
        quantum_cycles: quantum,
        requests_per_point: requests,
        seed: cfg.seed,
        traffic: cfg.traffic.label().to_owned(),
        fault_rate_ppm: cfg.fault_rate_ppm,
        tenants: specs,
        shapes: SHAPE_KEYS.iter().map(|s| (*s).to_owned()).collect(),
        load_ratios: ratios.to_vec(),
        abis,
    }
}

/// The deterministic metrics `bench_compare` gates on: per-ABI capacity
/// plus throughput and p99 at every load point. All of these are pure
/// functions of the seed, so any drift is a real model change.
pub fn service_metrics(report: &ServiceReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for a in &report.abis {
        out.push((format!("{}.capacity_rps", a.abi), a.capacity_rps));
        for p in &a.points {
            out.push((
                format!("{}.r{:.2}.throughput_rps", a.abi, p.offered_ratio),
                p.throughput_rps,
            ));
            out.push((
                format!("{}.r{:.2}.p99_ms", a.abi, p.offered_ratio),
                p.p99_ms,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The resilience sweep (fig. 12): storm intensity × policy tier per ABI.
// ---------------------------------------------------------------------------

/// Storm intensities (requests per million faulted inside the storm
/// window) for the quick resilience sweep.
pub const QUICK_STORM_PPM: [u64; 2] = [0, 250_000];

/// Storm intensities for the full resilience sweep.
pub const FULL_STORM_PPM: [u64; 4] = [0, 50_000, 250_000, 600_000];

/// Policy tiers swept, weakest first: `naive` (PR 7 semantics: no
/// intervention), `resilient` (deadline + budgeted retries + breaker),
/// `full` (`resilient` plus SLO-aware shedding and hedging).
pub const POLICY_TIERS: [&str; 3] = ["naive", "resilient", "full"];

/// Offered load for every resilience cell, as a fraction of hybrid
/// capacity — enough headroom that the healthy service meets its SLO,
/// little enough that a one-core outage plus retry pressure hurts.
pub const RESILIENCE_UTILIZATION: f64 = 0.55;

/// Per-tenant row of one resilience cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceTenantPoint {
    /// Tenant name.
    pub tenant: String,
    /// Effective quarantine policy label.
    pub policy: String,
    /// DRR weight (shed order is lowest weight first).
    pub weight: u32,
    /// Requests served correctly.
    pub completed: u64,
    /// Silently corrupted responses.
    pub silent: u64,
    /// Requests returning errors after retries.
    pub errors: u64,
    /// Requests that exhausted their deadline.
    pub timeouts: u64,
    /// Fresh arrivals dropped by load shedding.
    pub shed: u64,
    /// Arrivals fast-failed by an open breaker.
    pub breaker_rejected: u64,
    /// Retry attempts granted from the tenant budget.
    pub retries: u64,
    /// Tenant p99 sojourn in milliseconds.
    pub p99_ms: f64,
    /// Times the tenant's breaker tripped open.
    pub breaker_opens: u64,
    /// The breaker finished the run closed (healthy).
    pub breaker_closed_at_end: bool,
    /// Tenant quarantine high-water mark in bytes.
    pub quarantine_bytes_hwm: u64,
    /// Allocation failures under quarantine pressure.
    pub heap_pressure: u64,
}

/// One (ABI × storm intensity × policy) cell of the resilience sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceCell {
    /// Policy tier label (one of [`POLICY_TIERS`]).
    pub policy: String,
    /// Storm fault intensity in requests per million (0 = no chaos).
    pub storm_ppm: u64,
    /// Requests emitted by the arrival process.
    pub arrivals: u64,
    /// Service attempts dispatched (retries and hedges included).
    pub attempts: u64,
    /// Requests served correctly.
    pub completed: u64,
    /// Silently corrupted responses (hybrid's failure mode).
    pub silent: u64,
    /// Requests returning errors after retries.
    pub errors: u64,
    /// Requests that exhausted their deadline.
    pub timeouts: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Requests rejected (degraded shape).
    pub rejected: u64,
    /// Fresh arrivals dropped by load shedding.
    pub shed: u64,
    /// Arrivals fast-failed by an open breaker.
    pub breaker_rejected: u64,
    /// Retry attempts granted.
    pub retries: u64,
    /// Hedge legs launched.
    pub hedges: u64,
    /// Breaker open transitions across tenants.
    pub breaker_opens: u64,
    /// Correct responses per simulated second (silent corruptions do
    /// **not** count — a poisoned 200 is not good service).
    pub goodput_rps: f64,
    /// All responses per simulated second.
    pub throughput_rps: f64,
    /// Dispatched attempts per first attempt (retry/hedge cost).
    pub retry_amplification: f64,
    /// Fraction of arrivals served within the SLO.
    pub slo_attainment: f64,
    /// Fraction of served responses that were silently corrupt.
    pub silent_rate: f64,
    /// Median end-to-end sojourn in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile sojourn in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile sojourn in milliseconds.
    pub p999_ms: f64,
    /// Storm window start in simulated milliseconds (None when calm).
    pub storm_start_ms: Option<f64>,
    /// Storm window end in simulated milliseconds.
    pub storm_end_ms: Option<f64>,
    /// Worst windowed p99 observed before the storm, in milliseconds.
    pub pre_storm_p99_ms: f64,
    /// Simulated milliseconds after storm end until a measurement
    /// window's p99 returned to within 25% of the pre-storm worst p99
    /// (None: no storm, no pre-storm baseline, or never recovered).
    pub recovery_ms: Option<f64>,
    /// Per-tenant breakdown.
    pub tenants: Vec<ResilienceTenantPoint>,
}

/// One ABI's resilience sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbiResilience {
    /// The ABI served.
    pub abi: Abi,
    /// Mean per-request service demand in cycles.
    pub mean_service_cycles: f64,
    /// Analytic capacity at full core count.
    pub capacity_rps: f64,
    /// Hedge delay used by the `full` tier (1.5 × p95 service demand).
    pub hedge_delay_cycles: u64,
    /// The cells, in (storm intensity, policy tier) order.
    pub cells: Vec<ResilienceCell>,
}

/// The `BENCH_resilience.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Schema version of this document.
    pub schema_version: u32,
    /// Document discriminator (`"resilience"`).
    pub kind: String,
    /// Quick mode was used.
    pub quick: bool,
    /// Workload scale of the request shapes.
    pub scale: String,
    /// Serving cores (the chaos campaign downs one mid-storm).
    pub cores: usize,
    /// Admission queue depth per tenant.
    pub queue_per_tenant: usize,
    /// DRR quantum in cycles.
    pub quantum_cycles: u64,
    /// Requests per cell.
    pub requests_per_cell: u64,
    /// Master seed.
    pub seed: u64,
    /// Arrival process label.
    pub traffic: String,
    /// Background corruption rate outside storms (requests per million).
    pub fault_rate_ppm: u64,
    /// Offered load (requests per second), shared by every cell.
    pub offered_rps: f64,
    /// Offered load as a fraction of hybrid capacity.
    pub offered_utilization: f64,
    /// The SLO in milliseconds.
    pub slo_ms: f64,
    /// Shed-controller measurement window in milliseconds.
    pub window_ms: f64,
    /// Storm intensities swept (requests per million).
    pub storm_ppm: Vec<u64>,
    /// Policy tiers swept.
    pub policies: Vec<String>,
    /// Tenant specs served.
    pub tenants: Vec<TenantSpec>,
    /// Request-shape keys.
    pub shapes: Vec<String>,
    /// Per-ABI results.
    pub abis: Vec<AbiResilience>,
}

/// p95 of the non-degraded service demands (1 when all degraded) — the
/// hedge-delay anchor.
fn p95_service_cycles(profiles: &[ShapeProfile]) -> u64 {
    let mut live: Vec<u64> = profiles
        .iter()
        .filter(|p| !p.degraded)
        .map(|p| p.service_cycles)
        .collect();
    if live.is_empty() {
        return 1;
    }
    live.sort_unstable();
    let rank = ((live.len() as f64 * 0.95).ceil() as usize).clamp(1, live.len());
    live[rank - 1]
}

/// Pre-storm p99 baseline and time-to-recovery from the measurement
/// window series: the worst windowed p99 entirely before the storm, and
/// the delay from storm end until a populated window's p99 returns to
/// within 25% of that baseline.
fn recovery_from_windows(
    windows: &[WindowPoint],
    storm: Option<(u64, u64)>,
    clock_hz: f64,
) -> (f64, Option<f64>) {
    let Some((start, end)) = storm else {
        return (0.0, None);
    };
    let pre = windows
        .iter()
        .filter(|w| w.end_cycle <= start && w.samples > 0)
        .map(|w| w.p99_cycles)
        .max()
        .unwrap_or(0);
    if pre == 0 {
        return (0.0, None);
    }
    let threshold = pre.saturating_add(pre / 4);
    let recovery = windows
        .iter()
        .filter(|w| w.end_cycle > end && w.samples > 0)
        .find(|w| w.p99_cycles <= threshold)
        .map(|w| cycles_to_ms(w.end_cycle.saturating_sub(end), clock_hz));
    (cycles_to_ms(pre, clock_hz), recovery)
}

/// The chaos seed for one storm intensity — shared by every (ABI ×
/// policy) cell at that intensity, so the tiers face the *same* storm.
fn storm_seed(base: u64, ppm: u64) -> u64 {
    SimRng::new(base ^ ppm.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00C4_A050).next_u64()
}

fn resilience_cell(
    r: &ResilientSimResult,
    policy: &str,
    storm_ppm: u64,
    chaos: &ChaosPlan,
    clock_hz: f64,
) -> ResilienceCell {
    let served = r.completed + r.silent;
    let storm = chaos.storm_window();
    let (pre_storm_p99_ms, recovery_ms) = recovery_from_windows(&r.windows, storm, clock_hz);
    ResilienceCell {
        policy: policy.to_owned(),
        storm_ppm,
        arrivals: r.arrivals,
        attempts: r.attempts,
        completed: r.completed,
        silent: r.silent,
        errors: r.errors,
        timeouts: r.timeouts,
        dropped: r.dropped,
        rejected: r.rejected,
        shed: r.shed,
        breaker_rejected: r.breaker_rejected,
        retries: r.retries,
        hedges: r.hedges,
        breaker_opens: r.breaker_opens,
        goodput_rps: r.goodput_rps(clock_hz),
        throughput_rps: r.throughput_rps(clock_hz),
        retry_amplification: r.amplification(),
        slo_attainment: r.slo_attained as f64 / r.arrivals.max(1) as f64,
        silent_rate: r.silent as f64 / served.max(1) as f64,
        p50_ms: cycles_to_ms(r.latency.quantile(0.50), clock_hz),
        p99_ms: cycles_to_ms(r.latency.quantile(0.99), clock_hz),
        p999_ms: cycles_to_ms(r.latency.quantile(0.999), clock_hz),
        storm_start_ms: storm.map(|(s, _)| cycles_to_ms(s, clock_hz)),
        storm_end_ms: storm.map(|(_, e)| cycles_to_ms(e, clock_hz)),
        pre_storm_p99_ms,
        recovery_ms,
        tenants: r
            .tenants
            .iter()
            .map(|t| ResilienceTenantPoint {
                tenant: t.name.clone(),
                policy: t.policy.to_owned(),
                weight: t.weight,
                completed: t.counters.completed,
                silent: t.counters.silent,
                errors: t.counters.errors,
                timeouts: t.counters.timeouts,
                shed: t.counters.shed,
                breaker_rejected: t.counters.breaker_rejected,
                retries: t.counters.retries,
                p99_ms: cycles_to_ms(t.latency.quantile(0.99), clock_hz),
                breaker_opens: t.breaker_opens,
                breaker_closed_at_end: t.breaker_closed_at_end,
                quarantine_bytes_hwm: t.heap.quarantine_bytes_hwm,
                heap_pressure: t.counters.heap_pressure,
            })
            .collect(),
    }
}

impl SweepConfig {
    /// Requests per resilience cell (longer runs than the load sweep so
    /// the storm window and the recovery tail are both well populated).
    pub fn resilience_requests_per_cell(&self) -> u64 {
        if self.quick {
            4_000
        } else {
            16_000
        }
    }

    /// Storm intensities swept.
    pub fn storm_ppms(&self) -> &'static [u64] {
        if self.quick {
            &QUICK_STORM_PPM
        } else {
            &FULL_STORM_PPM
        }
    }
}

/// Runs the resilience sweep: profile each ABI's shapes (fault variants
/// always measured — the storms need them), derive the shared offered
/// load from hybrid capacity, then simulate every (ABI × storm
/// intensity × policy tier) cell on the work-stealing pool. Cells are
/// pure functions of the seed and reduced in cell order, so the report
/// is byte-identical whatever `cfg.jobs` is.
///
/// # Panics
///
/// Panics if the hybrid profile table is entirely degraded or a pool
/// worker panics.
pub fn run_resilience_sweep(cfg: &SweepConfig) -> ResilienceReport {
    let platform = Platform::morello().with_scale(Scale::Test);
    let clock_hz = platform.uarch.clock_ghz * 1e9;
    let shapes = select(&SHAPE_KEYS);
    // Fault variants are always profiled here: the chaos storms need a
    // price and a classification for every shape's faulted twin.
    let fault_seed = Some(cfg.seed ^ 0xFA17);

    let abi_profiles: Vec<(Abi, Vec<ShapeProfile>)> = {
        let outcomes = run_cells(Abi::ALL.len(), cfg.jobs, |i| {
            let abi = Abi::ALL[i];
            (abi, profile_shapes(platform, &shapes, abi, 1, fault_seed))
        });
        outcomes
            .into_iter()
            .map(|o| match o {
                CellOutcome::Done(v) => v,
                CellOutcome::Panicked(msg) => panic!("profile cell panicked: {msg}"),
            })
            .collect()
    };

    let hybrid_mean = abi_profiles
        .iter()
        .find(|(abi, _)| *abi == Abi::Hybrid)
        .and_then(|(_, p)| mean_service_cycles(p))
        .expect("hybrid shapes must profile");
    let hybrid_capacity = cfg.cores as f64 * clock_hz / hybrid_mean;
    let offered = hybrid_capacity * RESILIENCE_UTILIZATION;
    let requests = cfg.resilience_requests_per_cell();
    let horizon = (requests as f64 / offered * clock_hz) as u64;
    // SLO at 8× the healthy mean demand: met with room to spare in
    // steady state, blown through under storm + outage pressure.
    let slo = (hybrid_mean * 8.0) as u64;
    let window = slo * 4;
    let storms = cfg.storm_ppms();
    let specs = default_tenants(cfg.tenants);
    let quantum = hybrid_mean as u64 + 1;
    let service = ServiceConfig {
        cores: cfg.cores,
        queue_per_tenant: 256,
        quantum_cycles: quantum,
        fault_rate_ppm: cfg.fault_rate_ppm,
        seed: cfg.seed,
        traffic: cfg.traffic,
    };

    // Per-ABI policy tiers (the standard tier is parameterised by that
    // ABI's own mean demand; hedge delay by its p95).
    struct AbiCtx {
        abi: Abi,
        profiles: Vec<ShapeProfile>,
        mean: f64,
        hedge_delay: u64,
        policies: Vec<ResiliencePolicy>,
    }
    let abis: Vec<AbiCtx> = abi_profiles
        .into_iter()
        .map(|(abi, profiles)| {
            let mean = mean_service_cycles(&profiles).unwrap_or(hybrid_mean);
            let hedge_delay = p95_service_cycles(&profiles).saturating_mul(3) / 2;
            let standard = ResiliencePolicy::standard(mean as u64, slo, window);
            let policies = vec![
                ResiliencePolicy::naive(slo, window),
                standard,
                standard.with_shedding().with_hedge(hedge_delay),
            ];
            AbiCtx {
                abi,
                profiles,
                mean,
                hedge_delay,
                policies,
            }
        })
        .collect();

    let per_abi = storms.len() * POLICY_TIERS.len();
    let outcomes = run_cells(abis.len() * per_abi, cfg.jobs, |i| {
        let ctx = &abis[i / per_abi];
        let rest = i % per_abi;
        let ppm = storms[rest / POLICY_TIERS.len()];
        let pi = rest % POLICY_TIERS.len();
        let chaos = ChaosPlan::storm_campaign(storm_seed(cfg.seed, ppm), horizon, ppm, specs.len());
        let r = simulate_resilient(&ResilientSimParams {
            config: &service,
            policy: &ctx.policies[pi],
            chaos: &chaos,
            profiles: &ctx.profiles,
            specs: &specs,
            abi: ctx.abi,
            offered_rps: offered,
            clock_ghz: platform.uarch.clock_ghz,
            requests,
        });
        resilience_cell(&r, POLICY_TIERS[pi], ppm, &chaos, clock_hz)
    });
    let mut cells: Vec<ResilienceCell> = outcomes
        .into_iter()
        .map(|o| match o {
            CellOutcome::Done(c) => c,
            CellOutcome::Panicked(msg) => panic!("resilience cell panicked: {msg}"),
        })
        .collect();

    let abi_rows = abis
        .into_iter()
        .map(|ctx| AbiResilience {
            abi: ctx.abi,
            mean_service_cycles: ctx.mean,
            capacity_rps: if ctx.mean > 0.0 {
                cfg.cores as f64 * clock_hz / ctx.mean
            } else {
                0.0
            },
            hedge_delay_cycles: ctx.hedge_delay,
            cells: cells.drain(..per_abi).collect(),
        })
        .collect();

    ResilienceReport {
        schema_version: 1,
        kind: "resilience".to_owned(),
        quick: cfg.quick,
        scale: format!("{:?}", Scale::Test),
        cores: cfg.cores,
        queue_per_tenant: service.queue_per_tenant,
        quantum_cycles: quantum,
        requests_per_cell: requests,
        seed: cfg.seed,
        traffic: cfg.traffic.label().to_owned(),
        fault_rate_ppm: cfg.fault_rate_ppm,
        offered_rps: offered,
        offered_utilization: RESILIENCE_UTILIZATION,
        slo_ms: cycles_to_ms(slo, clock_hz),
        window_ms: cycles_to_ms(window, clock_hz),
        storm_ppm: storms.to_vec(),
        policies: POLICY_TIERS.iter().map(|p| (*p).to_owned()).collect(),
        tenants: specs,
        shapes: SHAPE_KEYS.iter().map(|s| (*s).to_owned()).collect(),
        abis: abi_rows,
    }
}

/// The deterministic metrics `bench_compare` gates on for the
/// resilience sweep: per cell, goodput, SLO attainment, retry
/// amplification, tail latency, and the silent-corruption count. All
/// pure functions of the seed — any drift is a real model change.
pub fn resilience_metrics(report: &ResilienceReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for a in &report.abis {
        for c in &a.cells {
            let prefix = format!("{}.{}.s{}", a.abi, c.policy, c.storm_ppm);
            out.push((format!("{prefix}.goodput_rps"), c.goodput_rps));
            out.push((format!("{prefix}.slo_attainment"), c.slo_attainment));
            out.push((
                format!("{prefix}.retry_amplification"),
                c.retry_amplification,
            ));
            out.push((format!("{prefix}.p99_ms"), c.p99_ms));
            out.push((format!("{prefix}.silent"), c.silent as f64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_unique() {
        let report = ServiceReport {
            schema_version: 1,
            kind: "service".into(),
            quick: true,
            scale: "Test".into(),
            cores: 4,
            queue_per_tenant: 256,
            quantum_cycles: 1,
            requests_per_point: 1,
            seed: 0,
            traffic: "poisson".into(),
            fault_rate_ppm: 0,
            tenants: default_tenants(2),
            shapes: vec!["xz_557".into()],
            load_ratios: vec![0.5, 1.0],
            abis: vec![AbiService {
                abi: Abi::Hybrid,
                capacity_rps: 1.0,
                mean_service_cycles: 1.0,
                saturation_offered_rps: 1.0,
                profiles: Vec::new(),
                points: Vec::new(),
            }],
        };
        let metrics = service_metrics(&report);
        let mut names: Vec<&String> = metrics.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), metrics.len());
    }

    fn window(end_cycle: u64, samples: u64, p99_cycles: u64) -> WindowPoint {
        WindowPoint {
            end_cycle,
            samples,
            p99_cycles,
        }
    }

    #[test]
    fn recovery_finds_the_first_calm_window_after_the_storm() {
        let clock_hz = 1e9; // 1 cycle = 1 ns
        let windows = vec![
            window(1_000_000, 50, 2_000_000), // pre-storm baseline
            window(2_000_000, 50, 1_500_000), // pre-storm
            window(3_000_000, 40, 9_000_000), // mid-storm blowup
            window(4_000_000, 0, 0),          // post-storm, empty: skipped
            window(5_000_000, 30, 4_000_000), // still hot (> 1.25 × 2M)
            window(6_000_000, 30, 2_400_000), // recovered (≤ 2.5M)
        ];
        let (pre, rec) = recovery_from_windows(&windows, Some((2_100_000, 3_500_000)), clock_hz);
        assert!((pre - 2.0).abs() < 1e-9, "pre-storm worst p99: {pre}");
        // 6_000_000 − 3_500_000 cycles = 2.5 ms.
        assert!((rec.unwrap() - 2.5).abs() < 1e-9, "recovery: {rec:?}");
        // No storm → no recovery story.
        assert_eq!(recovery_from_windows(&windows, None, clock_hz), (0.0, None));
        // Never calms down → None.
        let hot = vec![window(1_000, 10, 100), window(9_000, 10, 100_000)];
        let (_, rec) = recovery_from_windows(&hot, Some((2_000, 3_000)), clock_hz);
        assert_eq!(rec, None);
    }

    #[test]
    fn storm_seed_is_shared_per_intensity_and_distinct_across() {
        assert_eq!(storm_seed(7, 250_000), storm_seed(7, 250_000));
        assert_ne!(storm_seed(7, 250_000), storm_seed(7, 50_000));
        assert_ne!(storm_seed(7, 250_000), storm_seed(8, 250_000));
    }

    #[test]
    fn resilience_metric_names_are_unique() {
        let cell = |policy: &str, ppm: u64| ResilienceCell {
            policy: policy.into(),
            storm_ppm: ppm,
            arrivals: 0,
            attempts: 0,
            completed: 0,
            silent: 0,
            errors: 0,
            timeouts: 0,
            dropped: 0,
            rejected: 0,
            shed: 0,
            breaker_rejected: 0,
            retries: 0,
            hedges: 0,
            breaker_opens: 0,
            goodput_rps: 0.0,
            throughput_rps: 0.0,
            retry_amplification: 1.0,
            slo_attainment: 1.0,
            silent_rate: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            p999_ms: 0.0,
            storm_start_ms: None,
            storm_end_ms: None,
            pre_storm_p99_ms: 0.0,
            recovery_ms: None,
            tenants: Vec::new(),
        };
        let report = ResilienceReport {
            schema_version: 1,
            kind: "resilience".into(),
            quick: true,
            scale: "Test".into(),
            cores: 4,
            queue_per_tenant: 256,
            quantum_cycles: 1,
            requests_per_cell: 1,
            seed: 0,
            traffic: "poisson".into(),
            fault_rate_ppm: 0,
            offered_rps: 1.0,
            offered_utilization: RESILIENCE_UTILIZATION,
            slo_ms: 1.0,
            window_ms: 4.0,
            storm_ppm: vec![0, 250_000],
            policies: POLICY_TIERS.iter().map(|p| (*p).to_owned()).collect(),
            tenants: default_tenants(2),
            shapes: vec!["xz_557".into()],
            abis: vec![
                AbiResilience {
                    abi: Abi::Hybrid,
                    mean_service_cycles: 1.0,
                    capacity_rps: 1.0,
                    hedge_delay_cycles: 1,
                    cells: vec![
                        cell("naive", 0),
                        cell("resilient", 0),
                        cell("naive", 250_000),
                        cell("resilient", 250_000),
                    ],
                },
                AbiResilience {
                    abi: Abi::Purecap,
                    mean_service_cycles: 1.0,
                    capacity_rps: 1.0,
                    hedge_delay_cycles: 1,
                    cells: vec![cell("naive", 0)],
                },
            ],
        };
        let metrics = resilience_metrics(&report);
        let mut names: Vec<&String> = metrics.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), metrics.len());
    }
}
