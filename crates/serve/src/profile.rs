//! Request-shape profiling: the measured half of the serving model.
//!
//! A "shape" is one workload from the registry at a small scale — the
//! body of one request. Before any queueing simulation runs, every
//! (shape × ABI) cell is executed once through the full timing model to
//! measure its **service demand** in cycles, its allocation volume
//! (which scales the tenant heap churn), and — when a background
//! corruption rate is configured — the cycle cost and classified
//! outcome of a fault-injected variant of the same request.
//!
//! Profiling runs on the work-stealing pool with a per-cell fuel
//! watchdog (the shared [`morello_sim::Watchdog`], the same helper the
//! resilient suite engine and the fault campaign use): each attempt caps
//! `interp.max_insts`, and a cell that exhausts its budget retries with
//! the budget doubled (deterministic backoff) up to a bounded number of
//! attempts before the shape is marked **degraded**. Degraded shapes
//! are rejected at admission by the service rather than allowed to
//! stall a core. Every cell is a pure simulation and outcomes are read
//! back in cell order, so the profile table is byte-identical whatever
//! `--jobs` is.

use cheri_isa::Abi;
use cheri_workloads::Workload;
use morello_fault::{FaultOutcome, FaultPlan, FaultRunner};
use morello_sim::engine::{run_cells, CellOutcome};
use morello_sim::{Platform, ProgramCache, Runner, Watchdog};
use serde::{Deserialize, Serialize};

/// Initial per-attempt instruction budget for the profiling watchdog.
/// Small-scale shapes retire well under this; the doubling retry ladder
/// covers honest outliers.
pub const PROFILE_FUEL: u64 = 200_000_000;

/// Watchdog retries before a shape is declared degraded (budget doubles
/// per attempt: 1×, 2×, 4×).
pub const PROFILE_RETRIES: u32 = 2;

/// How a faulted request variant ends, from the service's viewpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// The capability system trapped: the service returns an error.
    Trapped,
    /// The run completed with a wrong answer: served, silently corrupt.
    Silent,
    /// The injected corruption was dead; the response is correct.
    Benign,
    /// Non-capability crash (wild branch, fuel death): service error.
    Crashed,
}

impl FaultClass {
    /// `true` when the faulted request still produces a response
    /// (correct or not) rather than an error.
    pub fn serves(self) -> bool {
        matches!(self, FaultClass::Silent | FaultClass::Benign)
    }
}

/// The fault-injected variant of a shape: what a request hit by the
/// background corruption campaign costs and how it ends.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Cycles the injected run consumed (a trapped run is truncated, so
    /// this is typically *less* than the clean service demand).
    pub cycles: u64,
    /// Classified outcome.
    pub class: FaultClass,
}

/// One (shape × ABI) profile row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShapeProfile {
    /// Workload key (`xz_557`, …).
    pub key: String,
    /// The ABI profiled.
    pub abi: Abi,
    /// The watchdog exhausted its retry ladder (or the shape does not
    /// support this ABI): the service rejects this shape at admission.
    pub degraded: bool,
    /// Service demand in simulated cycles (0 when degraded).
    pub service_cycles: u64,
    /// Instructions retired by one request (0 when degraded).
    pub retired: u64,
    /// Heap allocations one request performs — the churn scale driven
    /// through the owning tenant's heap on completion.
    pub allocs: u64,
    /// Watchdog attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// The faulted variant, when a corruption campaign is configured.
    pub fault: Option<FaultProfile>,
}

/// Derives the per-shape campaign seed from the sweep seed — splitmix
/// of the shape index, matching the arrival generator's scrambler.
fn shape_seed(base: u64, index: usize) -> u64 {
    crate::arrival::SimRng::new(base.wrapping_add(index as u64)).next_u64()
}

/// Profiles every `shapes[i]` under `abi` on the work-stealing pool.
/// `fault_seed` of `Some` additionally measures the tag-clear-injected
/// variant of each (non-degraded) shape.
///
/// # Panics
///
/// Panics if a profiling worker itself panics — a harness bug, not a
/// workload outcome (workload failures become `degraded` rows).
pub fn profile_shapes(
    platform: Platform,
    shapes: &[Workload],
    abi: Abi,
    jobs: usize,
    fault_seed: Option<u64>,
) -> Vec<ShapeProfile> {
    let cache = ProgramCache::new();
    let outcomes = run_cells(shapes.len(), jobs, |i| {
        profile_one(
            platform,
            &shapes[i],
            abi,
            &cache,
            fault_seed.map(|s| shape_seed(s, i)),
        )
    });
    outcomes
        .into_iter()
        .map(|o| match o {
            CellOutcome::Done(p) => p,
            CellOutcome::Panicked(msg) => panic!("shape profiling cell panicked: {msg}"),
        })
        .collect()
}

fn profile_one(
    platform: Platform,
    shape: &Workload,
    abi: Abi,
    cache: &ProgramCache,
    fault_seed: Option<u64>,
) -> ShapeProfile {
    let mut degraded_row = ShapeProfile {
        key: shape.key.to_owned(),
        abi,
        degraded: true,
        service_cycles: 0,
        retired: 0,
        allocs: 0,
        attempts: 0,
        fault: None,
    };
    if !shape.supports(abi) {
        return degraded_row;
    }
    let watchdog = Watchdog::budgeted(PROFILE_FUEL).with_retries(PROFILE_RETRIES);
    let (result, attempts) = watchdog.run(&platform, |_, fuelled| {
        Runner::new(*fuelled)
            .run_with_cache(shape, abi, cache)
            .map(|report| (report, *fuelled))
    });
    match result {
        Ok((report, fuelled)) => {
            let fault = fault_seed.map(|seed| {
                let plan = FaultPlan::tag_clear_campaign(seed, 1, report.retired);
                match FaultRunner::new(fuelled).run(shape, abi, &plan) {
                    Ok(run) => FaultProfile {
                        cycles: run.stats.cpu_cycles,
                        class: match run.outcome {
                            FaultOutcome::Trapped => FaultClass::Trapped,
                            FaultOutcome::SilentCorruption { .. } => FaultClass::Silent,
                            FaultOutcome::Benign => FaultClass::Benign,
                            FaultOutcome::Crashed(_) => FaultClass::Crashed,
                        },
                    },
                    // An unrunnable campaign (NA cell slipped through)
                    // degenerates to a crash-priced variant.
                    Err(_) => FaultProfile {
                        cycles: report.stats.cpu_cycles,
                        class: FaultClass::Crashed,
                    },
                }
            });
            ShapeProfile {
                key: shape.key.to_owned(),
                abi,
                degraded: false,
                service_cycles: report.stats.cpu_cycles,
                retired: report.retired,
                allocs: report.heap.allocs,
                attempts,
                fault,
            }
        }
        Err(_) => {
            degraded_row.attempts = attempts;
            degraded_row
        }
    }
}

/// Mean service demand in cycles over the non-degraded shapes of a
/// profile table (requests draw shapes uniformly, so the unweighted
/// mean is the offered per-request demand). `None` when every shape
/// degraded.
pub fn mean_service_cycles(profiles: &[ShapeProfile]) -> Option<f64> {
    let live: Vec<u64> = profiles
        .iter()
        .filter(|p| !p.degraded)
        .map(|p| p.service_cycles)
        .collect();
    if live.is_empty() {
        return None;
    }
    Some(live.iter().sum::<u64>() as f64 / live.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_workloads::Scale;
    use morello_sim::suite::select;

    fn platform() -> Platform {
        Platform::morello().with_scale(Scale::Test)
    }

    #[test]
    fn profiles_are_deterministic_and_jobs_independent() {
        let shapes = select(&["xz_557", "alloc_stress"]);
        let one = profile_shapes(platform(), &shapes, Abi::Purecap, 1, Some(11));
        let four = profile_shapes(platform(), &shapes, Abi::Purecap, 4, Some(11));
        assert_eq!(
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&four).unwrap()
        );
        for p in &one {
            assert!(!p.degraded);
            assert!(p.service_cycles > 0);
            assert_eq!(p.attempts, 1);
            let f = p.fault.expect("fault variant requested");
            assert!(f.cycles > 0);
            // Purecap traps on tag-cleared capability use.
            assert_eq!(f.class, FaultClass::Trapped);
        }
        // The allocator stressor drives real churn volume.
        assert!(one.iter().any(|p| p.allocs > 0));
    }

    /// The pooled-`RunState` contract the profiler leans on: repeated
    /// shape×ABI profiling on one thread is byte-identical across
    /// passes (phase A is a pure function of its inputs, warm pool or
    /// cold), and once the fast engine's thread-local arena pool is
    /// warm every profiled run reuses an arena instead of allocating.
    #[test]
    fn repeat_profiling_is_byte_identical_and_reuses_run_arenas() {
        let shapes = select(&["xz_557", "alloc_stress"]);
        let cache = ProgramCache::new();
        let pass = |cache: &ProgramCache| -> Vec<ShapeProfile> {
            let mut rows = Vec::new();
            for abi in [Abi::Hybrid, Abi::Purecap] {
                for shape in &shapes {
                    rows.push(profile_one(platform(), shape, abi, cache, None));
                }
            }
            rows
        };
        let before = cheri_isa::run_arena_stats();
        let first = pass(&cache);
        let mid = cheri_isa::run_arena_stats();
        let second = pass(&cache);
        let after = cheri_isa::run_arena_stats();

        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            "repeat profiling over a warm arena pool must be byte-identical"
        );
        // Every profiled cell is one fast-engine run.
        let acq_cold = mid.acquires - before.acquires;
        assert_eq!(acq_cold, (shapes.len() * 2) as u64);
        // The single profiling thread releases each arena before the
        // next run acquires, so a cold pool allocates at most once.
        assert!(
            mid.reuses - before.reuses >= acq_cold - 1,
            "cold pass reused {} of {} acquires",
            mid.reuses - before.reuses,
            acq_cold
        );
        // Warm pool: reuse one-for-one, zero fresh allocations.
        assert_eq!(
            after.acquires - mid.acquires,
            after.reuses - mid.reuses,
            "warm pass must serve every run from the pool"
        );
    }

    #[test]
    fn hybrid_faults_never_trap() {
        let shapes = select(&["xz_557"]);
        let rows = profile_shapes(platform(), &shapes, Abi::Hybrid, 1, Some(3));
        let f = rows[0].fault.unwrap();
        assert!(
            matches!(
                f.class,
                FaultClass::Silent | FaultClass::Benign | FaultClass::Crashed
            ),
            "hybrid has no capability traps, got {:?}",
            f.class
        );
    }

    #[test]
    fn unsupported_abi_is_a_degraded_row() {
        let shapes = select(&["quickjs"]);
        let rows = profile_shapes(platform(), &shapes, Abi::Benchmark, 1, None);
        assert!(rows[0].degraded);
        assert_eq!(rows[0].service_cycles, 0);
    }

    #[test]
    fn mean_ignores_degraded_rows() {
        let rows = vec![
            ShapeProfile {
                key: "a".into(),
                abi: Abi::Hybrid,
                degraded: false,
                service_cycles: 100,
                retired: 1,
                allocs: 1,
                attempts: 1,
                fault: None,
            },
            ShapeProfile {
                key: "b".into(),
                abi: Abi::Hybrid,
                degraded: true,
                service_cycles: 0,
                retired: 0,
                allocs: 0,
                attempts: 3,
                fault: None,
            },
            ShapeProfile {
                key: "c".into(),
                abi: Abi::Hybrid,
                degraded: false,
                service_cycles: 300,
                retired: 1,
                allocs: 1,
                attempts: 1,
                fault: None,
            },
        ];
        assert_eq!(mean_service_cycles(&rows), Some(200.0));
        assert_eq!(mean_service_cycles(&rows[1..2]), None);
    }
}
