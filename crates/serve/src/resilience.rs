//! The resilience layer: deadlines, budgeted retries with decorrelated
//! jitter, hedged requests, per-tenant circuit breakers, and SLO-aware
//! load shedding over the multi-tenant service simulator.
//!
//! [`simulate_resilient`] is a superset of [`crate::sim::simulate`]:
//! the same open-loop arrivals, bounded admission queues, and deficit
//! round robin over a core pool, plus a policy-driven reliability tier
//! and a [`ChaosPlan`] injecting fault storms, heap-pressure spikes,
//! and core outages. The naive PR 7 policy is recovered exactly by
//! [`ResiliencePolicy::naive`] (measurement only, no intervention), so
//! sweeps can compare "what PR 7 would have served" against each
//! resilient policy on identical streams and storms.
//!
//! The semantics worth spelling out:
//!
//! * **Deadlines** are per *attempt*, measured from the attempt's
//!   enqueue. A request that queues past its deadline fails without
//!   occupying a core; a response landing past it is discarded as a
//!   timeout even if the computation succeeded. Sojourn histograms are
//!   always end-to-end from the original arrival.
//! * **Retries** draw from a per-tenant token budget (milli-tokens
//!   accrued per admitted arrival, [`RetryPolicy::budget_per_mille`]
//!   each), capping amplification at `1 + budget/1000` plus a constant
//!   burst allowance however hard the storm blows. Backoff is
//!   exponential with decorrelated jitter — `min(cap, uniform(base,
//!   3 × prev))` — seeded from the request id and attempt number, never
//!   from scheduling. Every retry re-draws its fault lottery: under a
//!   *deterministically trapping* ABI a storm-faulted request usually
//!   completes on retry, which is the figure's headline.
//! * **Silent corruptions are successes** to every policy here: the
//!   service observes a well-formed 200. Retries, breakers, and
//!   hedging cannot engage — the hybrid ABI's poisoned responses ride
//!   straight through, which is the point.
//! * **Circuit breakers** are per tenant: `failure_threshold`
//!   consecutive failures (traps, crashes, timeouts) open the breaker;
//!   admissions fast-fail while open; after `open_cycles` the breaker
//!   half-opens and admits `half_open_probes` probe requests whose
//!   outcomes close it ([`BreakerPolicy::close_after`] successes) or
//!   re-open it (any failure).
//! * **Load shedding** watches the measured p99 per
//!   [`ResiliencePolicy::window_cycles`] window: each window over SLO
//!   raises the shed level by one tier, each compliant window lowers
//!   it. Tier *k* sheds fresh arrivals of the *k* lowest-weight
//!   tenants (retries are exempt — money already spent). The
//!   highest-weight tenant is never shed.
//! * **Hedging** (optional) launches a duplicate leg if a dispatched
//!   request is still running after [`HedgePolicy::delay_cycles`]
//!   (sweep-derived from the p95 of the profiled service demand); the
//!   first successful leg wins and cancels its sibling, and a hedge is
//!   only launched when a core is idle.

use crate::arrival::{ArrivalGen, SimRng};
use crate::chaos::ChaosPlan;
use crate::profile::{FaultClass, ShapeProfile};
use crate::sim::ServiceConfig;
use crate::tenant::{TenantCounters, TenantSpec, TenantState};
use cheri_isa::Abi;
use cheri_mem::HeapStats;
use morello_obs::LogHistogram;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One milli-token; a retry costs 1000 of them.
const MILLI: u64 = 1000;

/// Retry-token cap per tenant (10 whole retries of burst headroom).
const TOKEN_CAP: u64 = 10 * MILLI;

/// Bounded retry with exponential backoff and decorrelated jitter.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff floor in cycles (first retry draws in `[base, 3·base)`).
    pub base_backoff_cycles: u64,
    /// Backoff ceiling in cycles.
    pub max_backoff_cycles: u64,
    /// Retry budget accrued per admitted arrival, in milli-tokens: a
    /// retry costs 1000, so a budget of 500 caps steady-state retry
    /// amplification at 1.5×.
    pub budget_per_mille: u32,
}

/// Per-tenant circuit breaker (closed → open → half-open → closed).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Cycles the breaker stays open before half-opening.
    pub open_cycles: u64,
    /// Probe requests admitted while half-open.
    pub half_open_probes: u32,
    /// Probe successes required to close again.
    pub close_after: u32,
}

/// Hedged requests: duplicate a still-running attempt after a delay.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Cycles a dispatched attempt may run before a hedge leg is
    /// launched (derived from a high quantile of the profiled service
    /// demand by the sweep driver).
    pub delay_cycles: u64,
}

/// The full reliability policy one simulation cell runs under.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// The per-request SLO in cycles (end-to-end sojourn) that
    /// attainment and shedding are measured against.
    pub slo_cycles: u64,
    /// Measurement window for the shed controller and the recovery
    /// time-series.
    pub window_cycles: u64,
    /// Per-attempt deadline in cycles, measured from the attempt's
    /// enqueue; `None` waits forever (the naive policy).
    pub deadline_cycles: Option<u64>,
    /// Retry policy; `None` fails requests on first error.
    pub retry: Option<RetryPolicy>,
    /// Circuit-breaker policy; `None` never fast-fails.
    pub breaker: Option<BreakerPolicy>,
    /// SLO-aware load shedding on/off.
    pub shed: bool,
    /// Hedged-request policy; `None` never duplicates work.
    pub hedge: Option<HedgePolicy>,
}

impl ResiliencePolicy {
    /// The PR 7 baseline: measure SLO attainment and windows, intervene
    /// never — no deadline, no retries, no breaker, no shedding.
    pub fn naive(slo_cycles: u64, window_cycles: u64) -> ResiliencePolicy {
        ResiliencePolicy {
            slo_cycles,
            window_cycles,
            deadline_cycles: None,
            retry: None,
            breaker: None,
            shed: false,
            hedge: None,
        }
    }

    /// The standard resilient tier, parameterised by the mean profiled
    /// service demand: a generous 100×-mean deadline, three attempts
    /// under a 500 ‰ retry budget with jittered backoff in
    /// `[mean/4, 8×mean]`, and a 10-consecutive-failure breaker that
    /// half-opens after 32 mean demands with 4 probes.
    pub fn standard(
        mean_service_cycles: u64,
        slo_cycles: u64,
        window_cycles: u64,
    ) -> ResiliencePolicy {
        let mean = mean_service_cycles.max(1);
        ResiliencePolicy {
            slo_cycles,
            window_cycles,
            deadline_cycles: Some(mean.saturating_mul(100)),
            retry: Some(RetryPolicy {
                max_attempts: 3,
                base_backoff_cycles: (mean / 4).max(1),
                max_backoff_cycles: mean.saturating_mul(8),
                budget_per_mille: 500,
            }),
            breaker: Some(BreakerPolicy {
                failure_threshold: 10,
                open_cycles: mean.saturating_mul(32),
                half_open_probes: 4,
                close_after: 2,
            }),
            shed: false,
            hedge: None,
        }
    }

    /// Enables SLO-aware load shedding.
    #[must_use]
    pub fn with_shedding(mut self) -> ResiliencePolicy {
        self.shed = true;
        self
    }

    /// Enables hedged requests after `delay_cycles`.
    #[must_use]
    pub fn with_hedge(mut self, delay_cycles: u64) -> ResiliencePolicy {
        self.hedge = Some(HedgePolicy { delay_cycles });
        self
    }
}

/// One measurement window of the recovery time-series: how many
/// responses landed in it and their p99 sojourn.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowPoint {
    /// The window's closing cycle.
    pub end_cycle: u64,
    /// Responses recorded in the window.
    pub samples: u64,
    /// p99 end-to-end sojourn of the window's responses (0 when empty).
    pub p99_cycles: u64,
}

/// One tenant's end-of-run outcome under a resilient policy.
#[derive(Clone, Debug, Serialize)]
pub struct ResilientTenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Effective quarantine policy label.
    pub policy: &'static str,
    /// DRR weight (shedding order is lowest weight first).
    pub weight: u32,
    /// Service counters (including the resilience counters).
    pub counters: TenantCounters,
    /// End-to-end sojourn histogram (served responses), cycles.
    pub latency: LogHistogram,
    /// Tenant heap statistics.
    pub heap: HeapStats,
    /// Times this tenant's breaker tripped open.
    pub breaker_opens: u64,
    /// The breaker finished the run closed (healthy).
    pub breaker_closed_at_end: bool,
}

/// The outcome of one resilient simulation cell.
#[derive(Clone, Debug, Serialize)]
pub struct ResilientSimResult {
    /// Requests emitted by the arrival process.
    pub arrivals: u64,
    /// Service attempts dispatched to cores (retries and hedge legs
    /// included).
    pub attempts: u64,
    /// First attempts dispatched (the amplification denominator).
    pub first_attempts: u64,
    /// Requests served with a correct response.
    pub completed: u64,
    /// Requests served with silently corrupted responses.
    pub silent: u64,
    /// Requests that ended in an error (trap or crash) after retries.
    pub errors: u64,
    /// Requests that exhausted their deadline after retries.
    pub timeouts: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Requests rejected for a degraded shape.
    pub rejected: u64,
    /// Fresh arrivals dropped by load shedding.
    pub shed: u64,
    /// Arrivals fast-failed by an open breaker.
    pub breaker_rejected: u64,
    /// Retry attempts granted from tenant budgets.
    pub retries: u64,
    /// Hedge legs launched.
    pub hedges: u64,
    /// Breaker open transitions across all tenants.
    pub breaker_opens: u64,
    /// Requests still queued, in flight, or awaiting retry when the
    /// stream ended (not counted in any terminal bucket).
    pub unfinished: u64,
    /// Served responses whose end-to-end sojourn met the SLO.
    pub slo_attained: u64,
    /// Simulated cycle of the last event.
    pub sim_cycles: u64,
    /// Merged end-to-end sojourn histogram (served responses), cycles.
    pub latency: LogHistogram,
    /// The measurement-window time-series (recovery analysis).
    pub windows: Vec<WindowPoint>,
    /// Per-tenant outcomes, in spec order.
    pub tenants: Vec<ResilientTenantOutcome>,
}

impl ResilientSimResult {
    /// Correct responses per simulated second — the goodput. Unlike
    /// [`crate::sim::SimResult::throughput_rps`], silent corruptions do
    /// **not** count: a poisoned 200 is not good service.
    pub fn goodput_rps(&self, clock_hz: f64) -> f64 {
        if self.sim_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.sim_cycles as f64 / clock_hz)
    }

    /// All responses per simulated second (completed + silent).
    pub fn throughput_rps(&self, clock_hz: f64) -> f64 {
        if self.sim_cycles == 0 {
            return 0.0;
        }
        (self.completed + self.silent) as f64 / (self.sim_cycles as f64 / clock_hz)
    }

    /// Dispatched attempts per first attempt — the retry/hedge
    /// amplification factor (1.0 when no retries or hedges launched).
    pub fn amplification(&self) -> f64 {
        if self.first_attempts == 0 {
            return 1.0;
        }
        self.attempts as f64 / self.first_attempts as f64
    }
}

/// Everything one resilient simulation cell needs.
pub struct ResilientSimParams<'a> {
    /// Service geometry and stream seed.
    pub config: &'a ServiceConfig,
    /// The reliability policy under test.
    pub policy: &'a ResiliencePolicy,
    /// The chaos campaign injected into the cell.
    pub chaos: &'a ChaosPlan,
    /// Profiled request shapes for this ABI.
    pub profiles: &'a [ShapeProfile],
    /// Tenant population.
    pub specs: &'a [TenantSpec],
    /// The ABI (selects tenant heap policies).
    pub abi: Abi,
    /// Offered load in requests per simulated second.
    pub offered_rps: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Arrivals to generate.
    pub requests: u64,
}

/// A queued service attempt (fresh arrival, retry, or breaker probe).
#[derive(Clone, Copy, Debug)]
struct Attempt {
    id: u64,
    tenant: usize,
    shape: usize,
    orig_arrival: u64,
    enqueued: u64,
    attempt: u32,
    prev_backoff: u64,
    probe: bool,
    fault_draw: f64,
}

/// How one dispatched leg ends (decided at dispatch, realised at its
/// finish event).
const LEG_OK: u8 = 0;
const LEG_SILENT: u8 = 1;
const LEG_ERROR: u8 = 2;

/// A dispatched attempt: its queue record plus how many legs (1, or 2
/// once hedged) are still occupying cores.
struct Flight {
    att: Attempt,
    legs: u32,
    resolved: bool,
}

/// Why an attempt failed — drives the terminal counter if retries are
/// exhausted.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailKind {
    Timeout,
    Error,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: u64 },
    HalfOpen,
}

enum Admit {
    Normal,
    Probe,
    Reject,
}

/// One tenant's circuit breaker.
struct Breaker {
    policy: Option<BreakerPolicy>,
    state: BreakerState,
    consecutive_failures: u32,
    probes_in_flight: u32,
    probe_successes: u32,
    opens: u64,
}

impl Breaker {
    fn new(policy: Option<BreakerPolicy>) -> Breaker {
        Breaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            opens: 0,
        }
    }

    fn trip(&mut self, now: u64) {
        let p = self.policy.expect("trip only under a policy");
        self.state = BreakerState::Open {
            until: now.saturating_add(p.open_cycles),
        };
        self.opens += 1;
        self.consecutive_failures = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }

    /// Admission decision for an attempt arriving at `now`.
    fn admit(&mut self, now: u64) -> Admit {
        let Some(p) = self.policy else {
            return Admit::Normal;
        };
        match self.state {
            BreakerState::Closed => Admit::Normal,
            BreakerState::Open { until } if now < until => Admit::Reject,
            BreakerState::Open { .. } => {
                // Open window elapsed: half-open and try to admit this
                // attempt as the first probe.
                self.state = BreakerState::HalfOpen;
                self.probes_in_flight = 1;
                self.probe_successes = 0;
                Admit::Probe
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight < p.half_open_probes {
                    self.probes_in_flight += 1;
                    Admit::Probe
                } else {
                    Admit::Reject
                }
            }
        }
    }

    /// Records an attempt outcome (success = a served response —
    /// silent corruption included, the service cannot tell).
    fn on_outcome(&mut self, now: u64, success: bool, probe: bool) {
        let Some(p) = self.policy else {
            return;
        };
        if probe {
            self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
        }
        match self.state {
            BreakerState::Closed => {
                if success {
                    self.consecutive_failures = 0;
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= p.failure_threshold {
                        self.trip(now);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if !probe {
                    // A straggler admitted before the trip; its outcome
                    // does not vote on the probe round.
                    return;
                }
                if success {
                    self.probe_successes += 1;
                    if self.probe_successes >= p.close_after {
                        self.state = BreakerState::Closed;
                        self.consecutive_failures = 0;
                    }
                } else {
                    self.trip(now);
                }
            }
            // Outcomes landing while open are stragglers from before
            // the trip; the open timer is authoritative.
            BreakerState::Open { .. } => {}
        }
    }

    fn is_closed(&self) -> bool {
        matches!(self.state, BreakerState::Closed)
    }
}

/// The SLO-aware shed controller plus the window time-series recorder
/// (the series is recorded even when shedding is off, so the naive
/// policy yields the same recovery analysis).
struct ShedController {
    enabled: bool,
    slo: u64,
    window: u64,
    next_tick: u64,
    hist: LogHistogram,
    level: usize,
    max_level: usize,
    /// Tenant indices, lowest weight first (ties: lower index first) —
    /// the shedding order.
    order: Vec<usize>,
    shed_set: Vec<bool>,
    windows: Vec<WindowPoint>,
}

impl ShedController {
    fn new(policy: &ResiliencePolicy, specs: &[TenantSpec]) -> ShedController {
        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by_key(|&i| (specs[i].weight, i));
        ShedController {
            enabled: policy.shed,
            slo: policy.slo_cycles,
            window: policy.window_cycles.max(1),
            next_tick: policy.window_cycles.max(1),
            hist: LogHistogram::new(),
            level: 0,
            // The highest-weight tenant is never shed.
            max_level: specs.len().saturating_sub(1),
            order,
            shed_set: vec![false; specs.len()],
            windows: Vec::new(),
        }
    }

    /// Closes every window boundary at or before `now`.
    fn tick_to(&mut self, now: u64) {
        while self.next_tick <= now {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let samples = self.hist.count();
        let p99 = if samples == 0 {
            0
        } else {
            self.hist.quantile(0.99)
        };
        self.windows.push(WindowPoint {
            end_cycle: self.next_tick,
            samples,
            p99_cycles: p99,
        });
        if self.enabled {
            if samples > 0 && p99 > self.slo {
                self.level = (self.level + 1).min(self.max_level);
            } else {
                self.level = self.level.saturating_sub(1);
            }
            self.shed_set.iter_mut().for_each(|s| *s = false);
            for &t in self.order.iter().take(self.level) {
                self.shed_set[t] = true;
            }
        }
        self.hist = LogHistogram::new();
        self.next_tick += self.window;
    }

    fn observe(&mut self, sojourn: u64) {
        self.hist.record(sojourn);
    }

    fn is_shedding(&self, tenant: usize) -> bool {
        self.shed_set[tenant]
    }

    /// Closes the final partial window and returns the series.
    fn finish(mut self) -> Vec<WindowPoint> {
        self.close_window();
        self.windows
    }
}

/// Backoff with decorrelated jitter: `min(cap, uniform(base, 3·prev))`.
fn decorrelated_backoff(rng: &mut SimRng, base: u64, prev: u64, cap: u64) -> u64 {
    let base = base.max(1);
    let hi = prev.saturating_mul(3).max(base + 1);
    base.saturating_add(rng.below(hi - base)).min(cap.max(base))
}

/// The per-retry RNG: seeded from the stream seed, request id, and
/// attempt number — coordinates, never scheduling.
fn retry_rng(seed: u64, id: u64, attempt: u32) -> SimRng {
    SimRng::new(
        seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

/// The leg outcome code for a dispatch decided `faulted` against a
/// shape profile.
fn leg_code(faulted: bool, profile: &ShapeProfile) -> u8 {
    if !faulted {
        return LEG_OK;
    }
    match profile.fault.map(|f| f.class) {
        Some(FaultClass::Silent) => LEG_SILENT,
        Some(FaultClass::Benign) | None => LEG_OK,
        Some(FaultClass::Trapped) | Some(FaultClass::Crashed) => LEG_ERROR,
    }
}

/// Runs one resilient simulation cell. See the module docs for the
/// policy semantics.
///
/// # Panics
///
/// Panics when every profiled shape is degraded (the sweep driver
/// filters such ABIs out first).
#[allow(clippy::too_many_lines)]
pub fn simulate_resilient(p: &ResilientSimParams) -> ResilientSimResult {
    assert!(
        p.profiles.iter().any(|pr| !pr.degraded),
        "no runnable shapes to serve"
    );
    let config = p.config;
    let policy = p.policy;
    let shares: Vec<f64> = p.specs.iter().map(|s| s.traffic_share).collect();
    let mut gen = ArrivalGen::new(
        config.seed,
        config.traffic,
        p.offered_rps,
        p.clock_ghz,
        &shares,
        p.profiles.len(),
    );
    let mut tenants: Vec<TenantState> = p
        .specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            TenantState::new(
                s,
                p.abi,
                SimRng::new(config.seed ^ (i as u64 + 1)).next_u64(),
            )
        })
        .collect();
    let mut breakers: Vec<Breaker> = p
        .specs
        .iter()
        .map(|_| Breaker::new(policy.breaker))
        .collect();
    let mut tokens: Vec<u64> = vec![0; p.specs.len()];
    let mut shed = ShedController::new(policy, p.specs);

    let mut queues: Vec<VecDeque<Attempt>> = vec![VecDeque::new(); p.specs.len()];
    let mut deficit: Vec<u64> = vec![0; p.specs.len()];
    let mut cursor = 0_usize;
    let mut queued = 0_usize;
    let mut busy = 0_usize;

    // Leg finish events: (finish, leg_seq, flight_id, outcome code).
    let mut legs: BinaryHeap<Reverse<(u64, u64, u64, u8)>> = BinaryHeap::new();
    let mut lseq = 0_u64;
    let mut flights: HashMap<u64, Flight> = HashMap::new();
    let mut next_fid = 0_u64;
    // Pending retries: (due, retry_seq) plus the attempt records.
    let mut retry_heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut retry_map: HashMap<u64, Attempt> = HashMap::new();
    let mut rseq = 0_u64;
    // Hedge timers: (due, flight_id).
    let mut hedge_heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();

    let boundaries = p.chaos.boundaries();
    let mut bi = 0_usize;

    let mut arrivals = 0_u64;
    let mut attempts = 0_u64;
    let mut first_attempts = 0_u64;
    let mut rejected = 0_u64;
    let mut timeouts = 0_u64;
    let mut errors = 0_u64;
    let mut sim_cycles = 0_u64;
    let mut next_arrival = (arrivals < p.requests).then(|| gen.next_request());

    // The failure path: vote the breaker, spend the retry budget or
    // take the terminal counter. A macro rather than a closure so it
    // can borrow the locals it needs per call site.
    macro_rules! on_failure {
        ($att:expr, $kind:expr, $now:expr) => {{
            let att: Attempt = $att;
            let kind: FailKind = $kind;
            let now: u64 = $now;
            breakers[att.tenant].on_outcome(now, false, att.probe);
            let mut retried = false;
            if let Some(rp) = policy.retry {
                if att.attempt < rp.max_attempts && tokens[att.tenant] >= MILLI {
                    tokens[att.tenant] -= MILLI;
                    tenants[att.tenant].counters.retries += 1;
                    let mut rng = retry_rng(config.seed, att.id, att.attempt);
                    let backoff = decorrelated_backoff(
                        &mut rng,
                        rp.base_backoff_cycles,
                        att.prev_backoff,
                        rp.max_backoff_cycles,
                    );
                    let fault_draw = rng.next_f64();
                    retry_map.insert(
                        rseq,
                        Attempt {
                            attempt: att.attempt + 1,
                            prev_backoff: backoff,
                            probe: false,
                            fault_draw,
                            ..att
                        },
                    );
                    retry_heap.push(Reverse((now.saturating_add(backoff), rseq)));
                    rseq += 1;
                    retried = true;
                }
            }
            if !retried {
                match kind {
                    FailKind::Timeout => {
                        tenants[att.tenant].counters.timeouts += 1;
                        timeouts += 1;
                    }
                    FailKind::Error => {
                        tenants[att.tenant].counters.errors += 1;
                        errors += 1;
                    }
                }
            }
        }};
    }

    // The success path: a served response (correct or silently
    // corrupt) landing at `finish`.
    macro_rules! on_served {
        ($att:expr, $silent:expr, $finish:expr) => {{
            let att: Attempt = $att;
            let finish: u64 = $finish;
            breakers[att.tenant].on_outcome(finish, true, att.probe);
            let sojourn = finish.saturating_sub(att.orig_arrival);
            let tenant = &mut tenants[att.tenant];
            if $silent {
                tenant.counters.silent += 1;
            } else {
                tenant.counters.completed += 1;
            }
            if sojourn <= policy.slo_cycles {
                tenant.counters.slo_attained += 1;
            }
            tenant.latency.record(sojourn);
            shed.observe(sojourn);
            let mult = p.chaos.churn_mult_at(finish, att.tenant);
            for _ in 0..mult {
                tenant.churn(p.profiles[att.shape].allocs);
            }
        }};
    }

    loop {
        // Skip boundaries the clock has already passed.
        while bi < boundaries.len() && boundaries[bi] <= sim_cycles {
            bi += 1;
        }
        let t_arr = next_arrival.as_ref().map(|r| r.arrival);
        let t_done = legs.peek().map(|&Reverse((f, ..))| f);
        let t_retry = retry_heap.peek().map(|&Reverse((at, _))| at);
        let t_hedge = hedge_heap.peek().map(|&Reverse((at, _))| at);
        // A chaos boundary is only an event while work is waiting on it
        // (an outage ending must restart dispatch); it never keeps an
        // otherwise-finished simulation alive.
        let t_chaos = if queued > 0 {
            boundaries.get(bi).copied()
        } else {
            None
        };
        let Some(now) = [t_done, t_retry, t_hedge, t_arr, t_chaos]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };
        sim_cycles = sim_cycles.max(now);
        shed.tick_to(now);

        // Leg completions (ties: completions before arrivals, as in the
        // naive simulator, so a freed core serves a same-cycle arrival).
        while let Some(&Reverse((finish, _, fid, code))) = legs.peek() {
            if finish > now {
                break;
            }
            legs.pop();
            let flight = flights.get_mut(&fid).expect("flight for leg");
            if flight.resolved {
                flight.legs -= 1;
                if flight.legs == 0 {
                    flights.remove(&fid);
                }
                continue;
            }
            let att = flight.att;
            if code == LEG_ERROR {
                // An erroring leg only resolves the flight if it is the
                // last leg still running (a hedge sibling may yet win).
                busy -= 1;
                flight.legs -= 1;
                if flight.legs == 0 {
                    flights.remove(&fid);
                    let kind = match policy.deadline_cycles {
                        Some(d) if finish.saturating_sub(att.enqueued) > d => FailKind::Timeout,
                        _ => FailKind::Error,
                    };
                    on_failure!(att, kind, finish);
                }
            } else {
                // First served leg wins: cancel the sibling (its core
                // frees immediately) and resolve.
                busy -= flight.legs as usize;
                flight.resolved = true;
                flight.legs -= 1;
                if flight.legs == 0 {
                    flights.remove(&fid);
                }
                match policy.deadline_cycles {
                    Some(d) if finish.saturating_sub(att.enqueued) > d => {
                        // The response landed past the deadline: the
                        // client already gave up; classify as timeout.
                        on_failure!(att, FailKind::Timeout, finish);
                    }
                    _ => on_served!(att, code == LEG_SILENT, finish),
                }
            }
        }

        // Hedge timers due: duplicate still-running single-leg flights
        // when a core is idle.
        while let Some(&Reverse((at, fid))) = hedge_heap.peek() {
            if at > now {
                break;
            }
            hedge_heap.pop();
            let effective = config.cores.saturating_sub(p.chaos.cores_down_at(now));
            let Some(flight) = flights.get_mut(&fid) else {
                continue;
            };
            if flight.resolved || flight.legs != 1 || busy >= effective {
                continue;
            }
            let att = flight.att;
            let mut rng = retry_rng(config.seed ^ 0x4ED6_E5F1, att.id, att.attempt);
            let draw = rng.next_f64();
            let ppm = p.chaos.fault_ppm_at(now, config.fault_rate_ppm);
            let faulted = draw < ppm as f64 / 1e6 && p.profiles[att.shape].fault.is_some();
            let profile = &p.profiles[att.shape];
            let cost = if faulted {
                profile.fault.expect("checked").cycles
            } else {
                profile.service_cycles
            }
            .max(1);
            flight.legs = 2;
            busy += 1;
            attempts += 1;
            tenants[att.tenant].counters.hedges += 1;
            legs.push(Reverse((now + cost, lseq, fid, leg_code(faulted, profile))));
            lseq += 1;
        }

        // Retries due: re-admit through the breaker into the queue.
        while let Some(&Reverse((at, seq))) = retry_heap.peek() {
            if at > now {
                break;
            }
            retry_heap.pop();
            let mut att = retry_map.remove(&seq).expect("retry attempt");
            att.enqueued = now;
            match breakers[att.tenant].admit(now) {
                Admit::Reject => {
                    tenants[att.tenant].counters.breaker_rejected += 1;
                }
                admit => {
                    att.probe = matches!(admit, Admit::Probe);
                    if queues[att.tenant].len() >= config.queue_per_tenant {
                        tenants[att.tenant].counters.dropped += 1;
                    } else {
                        queues[att.tenant].push_back(att);
                        queued += 1;
                    }
                }
            }
        }

        // Fresh arrivals.
        while let Some(req) = next_arrival.take() {
            if req.arrival > now {
                next_arrival = Some(req);
                break;
            }
            arrivals += 1;
            if arrivals < p.requests {
                next_arrival = Some(gen.next_request());
            }
            let t = req.tenant;
            if p.profiles[req.shape].degraded {
                tenants[t].counters.rejected += 1;
                rejected += 1;
                continue;
            }
            // Budget accrual is per admitted-class arrival, shed or not
            // — shedding must not starve the budget that drains the
            // backlog it sheds for.
            if let Some(rp) = policy.retry {
                tokens[t] = (tokens[t] + u64::from(rp.budget_per_mille)).min(TOKEN_CAP);
            }
            if shed.is_shedding(t) {
                tenants[t].counters.shed += 1;
                continue;
            }
            match breakers[t].admit(now) {
                Admit::Reject => {
                    tenants[t].counters.breaker_rejected += 1;
                }
                admit => {
                    if queues[t].len() >= config.queue_per_tenant {
                        tenants[t].counters.dropped += 1;
                    } else {
                        queues[t].push_back(Attempt {
                            id: req.id,
                            tenant: t,
                            shape: req.shape,
                            orig_arrival: req.arrival,
                            enqueued: req.arrival,
                            attempt: 1,
                            prev_backoff: policy.retry.map_or(0, |rp| rp.base_backoff_cycles),
                            probe: matches!(admit, Admit::Probe),
                            fault_draw: req.fault_draw,
                        });
                        queued += 1;
                    }
                }
            }
        }

        // DRR dispatch over the effective (outage-shrunk) core pool.
        let effective = config.cores.saturating_sub(p.chaos.cores_down_at(now));
        let mut free = effective.saturating_sub(busy);
        while free > 0 && queued > 0 {
            let t = cursor;
            cursor = (cursor + 1) % queues.len();
            if queues[t].is_empty() {
                deficit[t] = 0;
                continue;
            }
            deficit[t] = deficit[t].saturating_add(
                config
                    .quantum_cycles
                    .saturating_mul(u64::from(p.specs[t].weight.max(1))),
            );
            while free > 0 {
                let Some(&head) = queues[t].front() else {
                    deficit[t] = 0;
                    break;
                };
                // An attempt that out-queued its deadline fails without
                // occupying a core.
                if let Some(d) = policy.deadline_cycles {
                    if now.saturating_sub(head.enqueued) > d {
                        queues[t].pop_front();
                        queued -= 1;
                        on_failure!(head, FailKind::Timeout, now);
                        continue;
                    }
                }
                let ppm = p.chaos.fault_ppm_at(now, config.fault_rate_ppm);
                let profile = &p.profiles[head.shape];
                let faulted = head.fault_draw < ppm as f64 / 1e6 && profile.fault.is_some();
                let cost = if faulted {
                    profile.fault.expect("checked").cycles
                } else {
                    profile.service_cycles
                }
                .max(1);
                if deficit[t] < cost {
                    break;
                }
                deficit[t] -= cost;
                queues[t].pop_front();
                queued -= 1;
                free -= 1;
                busy += 1;
                attempts += 1;
                if head.attempt == 1 {
                    first_attempts += 1;
                }
                flights.insert(
                    next_fid,
                    Flight {
                        att: head,
                        legs: 1,
                        resolved: false,
                    },
                );
                legs.push(Reverse((
                    now + cost,
                    lseq,
                    next_fid,
                    leg_code(faulted, profile),
                )));
                lseq += 1;
                if let Some(h) = policy.hedge {
                    hedge_heap.push(Reverse((now.saturating_add(h.delay_cycles), next_fid)));
                }
                next_fid += 1;
            }
        }
    }

    let windows = shed.finish();
    let mut latency = LogHistogram::new();
    let mut totals = TenantCounters::default();
    let mut breaker_opens = 0_u64;
    let tenant_rows: Vec<ResilientTenantOutcome> = tenants
        .into_iter()
        .zip(&breakers)
        .map(|(t, b)| {
            latency.merge(&t.latency);
            totals.completed += t.counters.completed;
            totals.silent += t.counters.silent;
            totals.dropped += t.counters.dropped;
            totals.shed += t.counters.shed;
            totals.breaker_rejected += t.counters.breaker_rejected;
            totals.retries += t.counters.retries;
            totals.hedges += t.counters.hedges;
            totals.slo_attained += t.counters.slo_attained;
            breaker_opens += b.opens;
            ResilientTenantOutcome {
                name: t.spec.name.clone(),
                policy: t.effective_policy().name(),
                weight: t.spec.weight,
                heap: t.heap_stats(),
                counters: t.counters.clone(),
                latency: t.latency.clone(),
                breaker_opens: b.opens,
                breaker_closed_at_end: b.is_closed(),
            }
        })
        .collect();
    let terminal = totals.completed
        + totals.silent
        + errors
        + timeouts
        + totals.dropped
        + rejected
        + totals.shed
        + totals.breaker_rejected;
    ResilientSimResult {
        arrivals,
        attempts,
        first_attempts,
        completed: totals.completed,
        silent: totals.silent,
        errors,
        timeouts,
        dropped: totals.dropped,
        rejected,
        shed: totals.shed,
        breaker_rejected: totals.breaker_rejected,
        retries: totals.retries,
        hedges: totals.hedges,
        breaker_opens,
        unfinished: arrivals.saturating_sub(terminal),
        slo_attained: totals.slo_attained,
        sim_cycles,
        latency,
        windows,
        tenants: tenant_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::TrafficModel;
    use crate::chaos::FaultStorm;
    use crate::tenant::default_tenants;

    fn profile(cycles: u64, fault: Option<(u64, FaultClass)>) -> ShapeProfile {
        ShapeProfile {
            key: "shape".into(),
            abi: Abi::Purecap,
            degraded: false,
            service_cycles: cycles,
            retired: cycles,
            allocs: 2,
            attempts: 1,
            fault: fault.map(|(cycles, class)| crate::profile::FaultProfile { cycles, class }),
        }
    }

    fn config(seed: u64, fault_ppm: u64) -> ServiceConfig {
        ServiceConfig {
            cores: 2,
            queue_per_tenant: 64,
            quantum_cycles: 1_000_000,
            fault_rate_ppm: fault_ppm,
            seed,
            traffic: TrafficModel::Poisson,
        }
    }

    fn run(
        cfg: &ServiceConfig,
        policy: &ResiliencePolicy,
        chaos: &ChaosPlan,
        profiles: &[ShapeProfile],
        specs: &[TenantSpec],
        rps: f64,
        requests: u64,
    ) -> ResilientSimResult {
        simulate_resilient(&ResilientSimParams {
            config: cfg,
            policy,
            chaos,
            profiles,
            specs,
            abi: Abi::Purecap,
            offered_rps: rps,
            clock_ghz: 2.5,
            requests,
        })
    }

    #[test]
    fn naive_policy_matches_the_naive_simulator_counters() {
        // Same stream, same geometry: the naive policy must serve the
        // same requests the PR 7 simulator serves.
        let profiles = vec![profile(500_000, None), profile(1_500_000, None)];
        let specs = default_tenants(3);
        let cfg = config(5, 0);
        let naive = ResiliencePolicy::naive(10_000_000, 12_500_000);
        let r = run(
            &cfg,
            &naive,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            500.0,
            2_000,
        );
        let s = crate::sim::simulate(&cfg, &profiles, &specs, Abi::Purecap, 500.0, 2.5, 2_000);
        assert_eq!(r.arrivals, s.arrivals);
        assert_eq!(r.completed, s.completed);
        assert_eq!(r.errors, s.errors);
        assert_eq!(r.dropped, s.dropped);
        assert_eq!(r.latency.quantile(0.99), s.latency.quantile(0.99));
        assert_eq!(r.attempts, r.first_attempts);
        assert!((r.amplification() - 1.0).abs() < 1e-12);
        assert_eq!(r.timeouts + r.shed + r.breaker_rejected + r.hedges, 0);
    }

    #[test]
    fn replays_are_byte_identical() {
        let profiles = vec![profile(800_000, Some((200_000, FaultClass::Trapped)))];
        let specs = default_tenants(3);
        let cfg = config(11, 50_000);
        let policy = ResiliencePolicy::standard(800_000, 8_000_000, 12_500_000)
            .with_shedding()
            .with_hedge(1_200_000);
        let chaos = ChaosPlan::storm_campaign(11, 20_000_000, 250_000, 3);
        let a = run(&cfg, &policy, &chaos, &profiles, &specs, 900.0, 3_000);
        let b = run(&cfg, &policy, &chaos, &profiles, &specs, 900.0, 3_000);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn retries_rescue_deterministic_traps() {
        // Every request faults (trap) on its first draw only with
        // probability ppm; a retry re-draws, so with retries the
        // trapped population is mostly recovered.
        let profiles = vec![profile(600_000, Some((150_000, FaultClass::Trapped)))];
        let specs = default_tenants(2);
        let cfg = config(21, 300_000); // 30% background trap rate
        let slo = 50_000_000;
        let naive = ResiliencePolicy::naive(slo, 12_500_000);
        let resilient = ResiliencePolicy::standard(600_000, slo, 12_500_000);
        let chaos = ChaosPlan::none();
        let base = run(&cfg, &naive, &chaos, &profiles, &specs, 400.0, 2_000);
        let res = run(&cfg, &resilient, &chaos, &profiles, &specs, 400.0, 2_000);
        assert!(base.errors > 100, "naive must be drowning: {}", base.errors);
        assert!(
            res.completed > base.completed,
            "retries must convert traps into served requests: {} vs {}",
            res.completed,
            base.completed
        );
        assert!(res.errors < base.errors / 2);
        assert!(res.retries > 0);
        assert!(res.amplification() > 1.0);
    }

    #[test]
    fn retry_budget_caps_amplification() {
        // 100% fault rate: every first attempt fails, and with three
        // allowed attempts amplification would hit 3.0 unbudgeted. A
        // 250‰ budget caps it near 1.25 (plus the burst allowance).
        let profiles = vec![profile(500_000, Some((100_000, FaultClass::Trapped)))];
        let specs = default_tenants(2);
        let cfg = config(31, 1_000_000);
        let mut policy = ResiliencePolicy::standard(500_000, 50_000_000, 12_500_000);
        policy.retry = Some(RetryPolicy {
            max_attempts: 3,
            base_backoff_cycles: 100_000,
            max_backoff_cycles: 2_000_000,
            budget_per_mille: 250,
        });
        policy.breaker = None; // isolate the budget from fast-fail
        let r = run(
            &cfg,
            &policy,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            300.0,
            4_000,
        );
        let amp = r.amplification();
        assert!(amp > 1.1, "budget should still grant retries: {amp}");
        assert!(
            amp <= 1.25 + 0.05,
            "amplification must respect the 250‰ budget: {amp}"
        );
    }

    #[test]
    fn silent_corruption_is_invisible_to_every_policy() {
        // The hybrid failure mode: faulted requests serve corrupt
        // bytes. No retries fire, no breaker opens, goodput (correct
        // responses) is NOT recovered.
        let profiles = vec![profile(500_000, Some((500_000, FaultClass::Silent)))];
        let specs = default_tenants(2);
        let cfg = config(41, 400_000);
        let policy = ResiliencePolicy::standard(500_000, 50_000_000, 12_500_000);
        let r = run(
            &cfg,
            &policy,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            300.0,
            2_000,
        );
        assert!(r.silent > 100, "silent corruptions must flow: {}", r.silent);
        assert_eq!(r.retries, 0, "nothing to retry: the 200s look fine");
        assert_eq!(r.breaker_opens, 0);
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn breaker_opens_under_storm_and_recloses_after() {
        // One tenant, total fault storm in the middle of the run: the
        // breaker must trip during the storm, fast-fail arrivals, and
        // re-close via half-open probes once the storm passes.
        let profiles = vec![profile(400_000, Some((100_000, FaultClass::Trapped)))];
        let specs = default_tenants(1);
        let cfg = config(51, 0);
        let mut policy = ResiliencePolicy::standard(400_000, 50_000_000, 12_500_000);
        policy.retry = None; // every trap votes the breaker immediately
        policy.breaker = Some(BreakerPolicy {
            failure_threshold: 5,
            // Several mean inter-arrival times (5M cycles at 500 rps on
            // a 2.5 GHz clock), so an open breaker actually fast-fails
            // arrivals before half-opening.
            open_cycles: 40_000_000,
            half_open_probes: 2,
            close_after: 2,
        });
        // 8000 arrivals × 5M cycles mean inter-arrival ≈ 40G cycles.
        let horizon = 40_000_000_000;
        let chaos = ChaosPlan {
            storms: vec![FaultStorm {
                start: horizon / 4,
                end: horizon / 2,
                fault_ppm: 1_000_000,
            }],
            heap_spikes: vec![],
            outages: vec![],
        };
        let r = run(&cfg, &policy, &chaos, &profiles, &specs, 500.0, 8_000);
        assert!(r.breaker_opens >= 1, "storm must trip the breaker");
        assert!(r.breaker_rejected > 0, "open breaker must fast-fail");
        assert!(
            r.tenants[0].breaker_closed_at_end,
            "breaker must recover after the storm"
        );
        assert!(r.completed > 0);
    }

    #[test]
    fn shedding_drops_lowest_weight_tenants_first() {
        // Three tenants, one heavyweight. Overload past capacity with a
        // tight SLO: the shed controller must shed the weight-1 tenants
        // and never the weight-8 one.
        let profiles = vec![profile(1_000_000, None)];
        let mut specs = default_tenants(3);
        specs[2].weight = 8;
        let cfg = config(61, 0);
        // 2 cores @ 1M cycles/req => capacity 2 req/M-cycles; offered
        // well past it so queues build and p99 blows through the SLO.
        let policy = ResiliencePolicy::naive(2_000_000, 6_000_000).with_shedding();
        let r = run(
            &cfg,
            &policy,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            9_000.0,
            9_000,
        );
        assert!(r.shed > 0, "overload must trigger shedding");
        assert!(r.tenants[0].counters.shed > 0);
        assert!(r.tenants[1].counters.shed > 0);
        assert_eq!(
            r.tenants[2].counters.shed, 0,
            "the heavyweight tenant is never shed"
        );
    }

    #[test]
    fn hedging_launches_and_counts_legs() {
        let profiles = vec![profile(2_000_000, None)];
        let specs = default_tenants(2);
        let cfg = config(71, 0);
        let policy = ResiliencePolicy::naive(50_000_000, 12_500_000).with_hedge(500_000);
        let r = run(
            &cfg,
            &policy,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            100.0,
            1_000,
        );
        assert!(r.hedges > 0, "slow requests must hedge");
        assert_eq!(r.attempts, r.first_attempts + r.hedges);
        assert!(r.amplification() > 1.0);
        // Hedging never loses requests: every arrival terminates.
        assert_eq!(r.unfinished, 0);
        assert_eq!(r.completed, r.arrivals);
    }

    #[test]
    fn deadlines_classify_queue_stalls_as_timeouts() {
        // One core down to zero via outage for the whole run start: not
        // possible (outage needs end), so instead: overload with a hard
        // deadline and no shedding — queued requests expire.
        let profiles = vec![profile(2_000_000, None)];
        let specs = default_tenants(2);
        let cfg = config(81, 0);
        let mut policy = ResiliencePolicy::naive(4_000_000, 12_500_000);
        policy.deadline_cycles = Some(4_000_000);
        let r = run(
            &cfg,
            &policy,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            5_000.0,
            3_000,
        );
        assert!(r.timeouts > 0, "overload past deadline must time out");
        assert_eq!(
            r.arrivals,
            r.completed + r.silent + r.errors + r.timeouts + r.dropped + r.rejected,
            "every arrival reaches exactly one terminal state"
        );
    }

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let mut rng = SimRng::new(7);
        let mut prev = 1_000;
        for _ in 0..64 {
            let b = decorrelated_backoff(&mut rng, 1_000, prev, 50_000);
            assert!(b >= 1_000, "floor: {b}");
            assert!(b <= 50_000, "cap: {b}");
            prev = b;
        }
        // Degenerate inputs stay sane.
        assert_eq!(decorrelated_backoff(&mut SimRng::new(1), 0, 0, 0), 1);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        assert_eq!(
            decorrelated_backoff(&mut a, 500, 2_000, 10_000),
            decorrelated_backoff(&mut b, 500, 2_000, 10_000)
        );
    }

    #[test]
    fn windows_record_the_recovery_series_even_when_not_shedding() {
        let profiles = vec![profile(500_000, None)];
        let specs = default_tenants(2);
        let cfg = config(91, 0);
        let policy = ResiliencePolicy::naive(10_000_000, 2_000_000);
        let r = run(
            &cfg,
            &policy,
            &ChaosPlan::none(),
            &profiles,
            &specs,
            400.0,
            1_000,
        );
        assert!(!r.windows.is_empty());
        assert!(r.windows.iter().any(|w| w.samples > 0));
        // Windows are strictly ordered by end cycle.
        assert!(r
            .windows
            .windows(2)
            .all(|w| w[0].end_cycle < w[1].end_cycle));
        assert_eq!(r.shed, 0);
    }
}
