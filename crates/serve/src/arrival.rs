//! Open-loop traffic generation: seeded Poisson and bursty on/off
//! arrival processes, and the request stream they emit.
//!
//! Everything here is a pure function of the seed: the arrival cycle of
//! request *k*, its tenant, its shape, and its fault draw never depend
//! on scheduling or host state, so the same `TrafficSpec` replayed
//! under any `--jobs` count (or any ABI — the stream is generated once
//! per load point and shared conceptually across ABIs by reusing the
//! seed) produces the identical stream.

use serde::{Deserialize, Serialize};

/// A splitmix64 PRNG — the same scrambler the fault campaigns derive
/// plan seeds from, small enough to embed one per tenant and one per
/// stream without caring.
#[derive(Clone, Copy, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1_u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// The arrival process shape.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Memoryless arrivals: exponential inter-arrival times at the
    /// offered rate.
    Poisson,
    /// Bursty on/off traffic: arrivals only during the *on* fraction of
    /// each period, at `offered_rate / on_share` so the long-run
    /// offered load matches the Poisson case — the tail-latency
    /// stressor.
    OnOff {
        /// Period length in simulated cycles.
        period_cycles: u64,
        /// Fraction of each period that is on, in `(0, 1]`.
        on_share: f64,
    },
}

impl TrafficModel {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficModel::Poisson => "poisson",
            TrafficModel::OnOff { .. } => "on-off",
        }
    }
}

/// One request of the open-loop stream.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Stream-order id (0-based).
    pub id: u64,
    /// Arrival time in simulated cycles.
    pub arrival: u64,
    /// Index into the tenant list.
    pub tenant: usize,
    /// Index into the request-shape mix.
    pub shape: usize,
    /// Uniform `[0, 1)` draw deciding whether this request falls under
    /// the background fault campaign (compared against the per-shape
    /// fault fraction, which depends on the ABI's retired count — the
    /// draw itself is ABI-independent so streams align across ABIs).
    pub fault_draw: f64,
}

/// Generates the open-loop request stream: arrival process plus the
/// per-request tenant / shape / fault draws.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    rng: SimRng,
    model: TrafficModel,
    /// Mean arrivals per simulated cycle of the *offered* (long-run)
    /// load.
    rate_per_cycle: f64,
    clock: f64,
    next_id: u64,
    /// Continuous arrival clock, in cycles.
    t: f64,
    tenant_shares: Vec<f64>,
    n_shapes: usize,
}

impl ArrivalGen {
    /// A generator emitting `offered_rps` requests per simulated second
    /// against a core clock of `clock_ghz`, spread over `tenant_shares`
    /// (cumulative-normalised internally) and `n_shapes` request shapes
    /// drawn uniformly.
    ///
    /// # Panics
    ///
    /// Panics when `offered_rps` is not positive or shares are empty.
    pub fn new(
        seed: u64,
        model: TrafficModel,
        offered_rps: f64,
        clock_ghz: f64,
        tenant_shares: &[f64],
        n_shapes: usize,
    ) -> ArrivalGen {
        assert!(offered_rps > 0.0, "offered load must be positive");
        assert!(!tenant_shares.is_empty(), "at least one tenant");
        let total: f64 = tenant_shares.iter().sum();
        let mut acc = 0.0;
        let cumulative = tenant_shares
            .iter()
            .map(|s| {
                acc += s / total;
                acc
            })
            .collect();
        let clock = clock_ghz * 1e9;
        ArrivalGen {
            rng: SimRng::new(seed),
            model,
            rate_per_cycle: offered_rps / clock,
            clock,
            next_id: 0,
            t: 0.0,
            tenant_shares: cumulative,
            n_shapes,
        }
    }

    /// The clock the generator is running against, in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock
    }

    /// Emits the next request of the stream.
    pub fn next_request(&mut self) -> Request {
        self.t += self.next_gap();
        let arrival = self.t as u64;
        let tenant_draw = self.rng.next_f64();
        let tenant = self
            .tenant_shares
            .iter()
            .position(|&c| tenant_draw < c)
            .unwrap_or(self.tenant_shares.len() - 1);
        let shape = self.rng.below(self.n_shapes as u64) as usize;
        let fault_draw = self.rng.next_f64();
        let id = self.next_id;
        self.next_id += 1;
        Request {
            id,
            arrival,
            tenant,
            shape,
            fault_draw,
        }
    }

    /// Exponential inter-arrival gap in cycles, shaped by the traffic
    /// model.
    fn next_gap(&mut self) -> f64 {
        match self.model {
            TrafficModel::Poisson => self.exp_gap(self.rate_per_cycle),
            TrafficModel::OnOff {
                period_cycles,
                on_share,
            } => {
                let period = period_cycles as f64;
                let on = period * on_share.clamp(1e-6, 1.0);
                let burst_rate = self.rate_per_cycle / on_share.clamp(1e-6, 1.0);
                // Sample at the burst rate; any candidate landing past
                // the end of the current on-window is carried into the
                // next period's on-window (the off-window emits
                // nothing).
                let mut t = self.t + self.exp_gap(burst_rate);
                loop {
                    let into_period = t % period;
                    if into_period < on {
                        break;
                    }
                    // Jump to the next period start, preserving the
                    // residual progress past the window (memorylessness
                    // makes the residual exponential again).
                    t += period - into_period;
                }
                t - self.t
            }
        }
    }

    fn exp_gap(&mut self, rate: f64) -> f64 {
        let u = self.rng.next_f64();
        -(1.0 - u).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_stream_is_deterministic_and_rate_accurate() {
        let gen = || ArrivalGen::new(42, TrafficModel::Poisson, 10_000.0, 2.5, &[1.0, 1.0], 4);
        let mut a = gen();
        let mut b = gen();
        let mut last = 0;
        for _ in 0..5_000 {
            let ra = a.next_request();
            let rb = b.next_request();
            assert_eq!(ra.arrival, rb.arrival);
            assert_eq!(ra.tenant, rb.tenant);
            assert_eq!(ra.shape, rb.shape);
            assert!(ra.arrival >= last, "arrivals are time-ordered");
            last = ra.arrival;
        }
        // 5000 arrivals at 10k rps ≈ 0.5 s ≈ 1.25e9 cycles at 2.5 GHz.
        let seconds = last as f64 / 2.5e9;
        let rate = 5_000.0 / seconds;
        assert!(
            (rate - 10_000.0).abs() / 10_000.0 < 0.1,
            "measured rate {rate} too far from offered 10000"
        );
    }

    #[test]
    fn onoff_stream_matches_offered_rate_and_stays_in_windows() {
        let period = 2_500_000_u64; // 1 ms at 2.5 GHz
        let on_share = 0.25;
        let mut g = ArrivalGen::new(
            7,
            TrafficModel::OnOff {
                period_cycles: period,
                on_share,
            },
            20_000.0,
            2.5,
            &[1.0],
            2,
        );
        let mut last = 0;
        for _ in 0..5_000 {
            let r = g.next_request();
            assert!(r.arrival >= last);
            last = r.arrival;
            let into = r.arrival % period;
            assert!(
                (into as f64) < period as f64 * on_share + 1.0,
                "arrival at {into} landed in the off window"
            );
        }
        let seconds = last as f64 / 2.5e9;
        let rate = 5_000.0 / seconds;
        assert!(
            (rate - 20_000.0).abs() / 20_000.0 < 0.15,
            "long-run on-off rate {rate} too far from offered 20000"
        );
    }

    #[test]
    fn tenant_shares_are_respected() {
        let mut g = ArrivalGen::new(3, TrafficModel::Poisson, 1_000.0, 2.5, &[9.0, 1.0], 1);
        let mut counts = [0_u64; 2];
        for _ in 0..10_000 {
            counts[g.next_request().tenant] += 1;
        }
        let heavy = counts[0] as f64 / 10_000.0;
        assert!(
            (heavy - 0.9).abs() < 0.03,
            "heavy tenant drew {heavy}, expected ~0.9"
        );
    }
}
