//! Morello-as-a-service: a multi-tenant request-serving simulation
//! over the Morello performance model, with tail-latency and capacity
//! reporting.
//!
//! The paper characterises Morello with batch workloads; this crate
//! asks the deployment-facing question the same numbers imply: *if
//! those workloads were request bodies behind a service, what do the
//! CHERI ABIs do to tail latency and capacity?* The pieces:
//!
//! - [`arrival`] — open-loop traffic: seeded Poisson and bursty on/off
//!   arrival processes emitting request-shaped workload instances.
//! - [`tenant`] — N tenants, each owning a real [`cheri_revoke::RevokingHeap`]
//!   under its own quarantine policy, churned per completed request.
//! - [`profile`] — per-(shape × ABI) service demand measured through
//!   the full timing model, with a fuel watchdog and fault-injected
//!   variants for the background corruption campaign.
//! - [`sim`] — a deterministic discrete-event scheduler: bounded
//!   admission queues (backpressure), deficit-round-robin fairness
//!   across tenants, a fixed core pool, all in simulated cycles.
//! - [`resilience`] — the reliability tier over the same scheduler:
//!   per-request deadlines, budgeted retries with decorrelated-jitter
//!   backoff, hedged requests, per-tenant circuit breakers, and
//!   SLO-aware load shedding.
//! - [`chaos`] — seeded chaos campaigns (fault storms, heap-pressure
//!   spikes, core outages) injected into resilient cells.
//! - [`report`] — the offered-load sweep and the `BENCH_service.json`
//!   schema (throughput-vs-load and latency-vs-load per ABI), plus the
//!   storm-intensity × policy resilience sweep behind
//!   `BENCH_resilience.json`; both gated in CI by `bench_compare`.
//!
//! Latency quantiles come from [`morello_obs::LogHistogram`], whose
//! exact-merge property keeps every number byte-identical across
//! `--jobs` counts.

mod arrival;
mod chaos;
mod profile;
mod report;
mod resilience;
mod sim;
mod tenant;

pub use arrival::{ArrivalGen, Request, SimRng, TrafficModel};
pub use chaos::{ChaosPlan, CoreOutage, FaultStorm, HeapSpike};
pub use profile::{
    mean_service_cycles, profile_shapes, FaultClass, FaultProfile, ShapeProfile, PROFILE_FUEL,
    PROFILE_RETRIES,
};
pub use report::{
    resilience_metrics, run_resilience_sweep, run_service_sweep, service_metrics, AbiResilience,
    AbiService, LoadPoint, ResilienceCell, ResilienceReport, ResilienceTenantPoint, ServiceReport,
    SweepConfig, TenantPoint, FULL_RATIOS, FULL_STORM_PPM, POLICY_TIERS, QUICK_RATIOS,
    QUICK_STORM_PPM, RESILIENCE_UTILIZATION, SHAPE_KEYS,
};
pub use resilience::{
    simulate_resilient, BreakerPolicy, HedgePolicy, ResiliencePolicy, ResilientSimParams,
    ResilientSimResult, ResilientTenantOutcome, RetryPolicy, WindowPoint,
};
pub use sim::{simulate, ServiceConfig, SimResult, TenantOutcome};
pub use tenant::{default_tenants, TenantCounters, TenantSpec, TenantState};
