//! The tenant model: per-tenant quarantine policy, heap churn, and
//! accumulated service statistics.
//!
//! Every simulated tenant owns a [`RevokingHeap`] under its own
//! [`StrategyKind`] quarantine discipline (plus the backing
//! [`TaggedMemory`] the revocation bitmap and tag sweeps live in). Each
//! completed request drives a bounded, seeded malloc/free churn through
//! that heap — the allocation volume scaled to what the request's
//! program actually allocated — so quarantine occupancy, revocation
//! epochs, and the per-tenant quarantine high-water mark emerge from
//! the real allocator machinery rather than a closed-form model. This
//! is the "quarantine memory amplification under churn" axis of
//! *Picking a CHERI Allocator* recast per tenant.

use crate::arrival::SimRng;
use cheri_isa::Abi;
use cheri_mem::TaggedMemory;
use cheri_revoke::{RevokingHeap, StrategyKind};
use morello_obs::LogHistogram;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tenant heap arena geometry (per tenant; tenants are disjoint
/// simulations so every tenant gets the same virtual window).
const HEAP_LO: u64 = 0x4010_0000;
const HEAP_HI: u64 = 0x5000_0000;
const BITMAP_BASE: u64 = 0x4008_0000;

/// Live blocks a tenant keeps between requests before the churn starts
/// freeing the oldest — the knob that turns allocation volume into
/// free-side quarantine pressure.
const LIVE_CAP: usize = 64;

/// Churn allocations per completed request are clamped to this bound so
/// a pathological shape cannot make the simulation quadratic.
const CHURN_CAP: u64 = 24;

/// Static description of one tenant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (`tenant-0`, …).
    pub name: String,
    /// Quarantine discipline for the tenant's heap. Non-capability ABIs
    /// run [`StrategyKind::Classic`] regardless, mirroring the
    /// interpreter's per-ABI allocator selection.
    pub policy: StrategyKind,
    /// Deficit-round-robin weight (quantum multiplier, ≥ 1).
    pub weight: u32,
    /// Share of offered traffic (normalised across tenants).
    pub traffic_share: f64,
}

/// The default tenant population: equal traffic shares and weights,
/// quarantine policies cycling through the allocator lab's disciplines
/// (padded, small swept quarantine, large swept quarantine).
pub fn default_tenants(n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| TenantSpec {
            name: format!("tenant-{i}"),
            policy: match i % 3 {
                0 => StrategyKind::CapabilityPadded,
                1 => StrategyKind::swept_bytes(32 * 1024),
                _ => StrategyKind::swept_bytes(256 * 1024),
            },
            weight: 1,
            traffic_share: 1.0,
        })
        .collect()
}

/// Per-tenant service counters, reported per load point.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// Requests admitted and completed.
    pub completed: u64,
    /// Requests refused at admission (tenant queue full — backpressure).
    pub dropped: u64,
    /// Requests refused at dispatch because their shape was degraded
    /// (profiling watchdog quarantined it).
    pub rejected: u64,
    /// Faulted requests that trapped or crashed (the service returned
    /// an error).
    pub errors: u64,
    /// Faulted requests served with silently corrupted results (the
    /// hybrid failure mode).
    pub silent: u64,
    /// Churn allocations driven through the tenant heap.
    pub churn_allocs: u64,
    /// Churn frees driven through the tenant heap.
    pub churn_frees: u64,
    /// Allocation failures under quarantine pressure (the heap emptied
    /// half its live set to recover).
    pub heap_pressure: u64,
    /// Requests that exhausted their deadline (queued too long or
    /// finished past it) — resilient policies only.
    #[serde(default)]
    pub timeouts: u64,
    /// Retry attempts this tenant's failed requests were granted from
    /// its retry budget — resilient policies only.
    #[serde(default)]
    pub retries: u64,
    /// Fresh arrivals dropped by SLO-aware load shedding — resilient
    /// policies only.
    #[serde(default)]
    pub shed: u64,
    /// Arrivals fast-rejected by an open circuit breaker — resilient
    /// policies only.
    #[serde(default)]
    pub breaker_rejected: u64,
    /// Hedge legs launched for this tenant's slow requests — resilient
    /// policies only.
    #[serde(default)]
    pub hedges: u64,
    /// Served requests whose end-to-end sojourn met the SLO — resilient
    /// policies only.
    #[serde(default)]
    pub slo_attained: u64,
}

/// One tenant's live simulation state.
pub struct TenantState {
    /// The spec this state was built from.
    pub spec: TenantSpec,
    /// The tenant's heap, under its own quarantine policy.
    heap: RevokingHeap,
    mem: TaggedMemory,
    live: VecDeque<u64>,
    rng: SimRng,
    /// Sojourn-time histogram (simulated cycles).
    pub latency: LogHistogram,
    /// Service counters.
    pub counters: TenantCounters,
}

impl TenantState {
    /// Builds the tenant's heap for one simulation run. The effective
    /// policy is the spec's for capability ABIs and
    /// [`StrategyKind::Classic`] for hybrid, exactly as the interpreter
    /// selects allocators per ABI.
    pub fn new(spec: &TenantSpec, abi: Abi, seed: u64) -> TenantState {
        let policy = match abi {
            Abi::Hybrid => StrategyKind::Classic,
            Abi::Purecap | Abi::Benchmark => spec.policy,
        };
        TenantState {
            spec: spec.clone(),
            heap: RevokingHeap::new(HEAP_LO, HEAP_HI, BITMAP_BASE, policy),
            mem: TaggedMemory::new(),
            live: VecDeque::new(),
            rng: SimRng::new(seed),
            latency: LogHistogram::new(),
            counters: TenantCounters::default(),
        }
    }

    /// The effective quarantine policy of the tenant's heap.
    pub fn effective_policy(&self) -> StrategyKind {
        self.heap.kind()
    }

    /// Heap statistics (quarantine occupancy/high-water, epochs, sweep
    /// counters) accumulated over the run so far.
    pub fn heap_stats(&self) -> cheri_mem::HeapStats {
        self.heap.stats()
    }

    /// Drives one completed request's allocation churn through the
    /// tenant heap: `shape_allocs`-scaled mallocs (clamped to a bound),
    /// then frees of the oldest live blocks beyond the live-set cap.
    /// Free-side quarantine pressure is what fires revocation epochs.
    pub fn churn(&mut self, shape_allocs: u64) {
        let n = shape_allocs.clamp(1, CHURN_CAP);
        for _ in 0..n {
            // Size classes 16 B .. 8 KiB, biased small like real churn.
            let size = 16_u64 << self.rng.below(6);
            let size = size + self.rng.below(size / 2 + 1);
            match self.heap.malloc(size) {
                Ok(a) => {
                    self.counters.churn_allocs += 1;
                    self.live.push_back(a.addr);
                }
                Err(_) => {
                    // Quarantine pressure exhausted the arena: shed half
                    // the live set and carry on — the request is served,
                    // the pressure event is counted.
                    self.counters.heap_pressure += 1;
                    let shed = (self.live.len() / 2).max(1);
                    for _ in 0..shed {
                        if let Some(addr) = self.live.pop_front() {
                            if self.heap.free(&mut self.mem, addr).is_ok() {
                                self.counters.churn_frees += 1;
                            }
                        }
                    }
                }
            }
        }
        while self.live.len() > LIVE_CAP {
            if let Some(addr) = self.live.pop_front() {
                if self.heap.free(&mut self.mem, addr).is_ok() {
                    self.counters.churn_frees += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_tenants_run_classic_regardless_of_policy() {
        let spec = &default_tenants(3)[1];
        assert_eq!(spec.policy, StrategyKind::swept_bytes(32 * 1024));
        let h = TenantState::new(spec, Abi::Hybrid, 1);
        assert_eq!(h.effective_policy(), StrategyKind::Classic);
        let p = TenantState::new(spec, Abi::Purecap, 1);
        assert_eq!(p.effective_policy(), spec.policy);
    }

    #[test]
    fn churn_fills_quarantine_and_fires_epochs_under_swept_policy() {
        let spec = TenantSpec {
            name: "t".into(),
            policy: StrategyKind::swept_bytes(32 * 1024),
            weight: 1,
            traffic_share: 1.0,
        };
        let mut t = TenantState::new(&spec, Abi::Purecap, 9);
        for _ in 0..200 {
            t.churn(16);
        }
        let stats = t.heap_stats();
        assert!(stats.quarantine_bytes_hwm > 0, "quarantine must fill");
        assert!(stats.revocation_epochs > 0, "epochs must fire under churn");
        assert!(t.counters.churn_allocs > t.counters.heap_pressure);
        // The classic (hybrid) tenant pays nothing.
        let mut h = TenantState::new(&spec, Abi::Hybrid, 9);
        for _ in 0..200 {
            h.churn(16);
        }
        assert_eq!(h.heap_stats().quarantine_bytes_hwm, 0);
        assert_eq!(h.heap_stats().revocation_epochs, 0);
    }

    #[test]
    fn churn_is_deterministic_for_a_seed() {
        let spec = &default_tenants(1)[0];
        let run = || {
            let mut t = TenantState::new(spec, Abi::Purecap, 77);
            for i in 0..100 {
                t.churn(1 + i % 20);
            }
            (t.heap_stats(), t.counters.clone())
        };
        assert_eq!(run(), run());
    }
}
