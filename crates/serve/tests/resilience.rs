//! Integration tests for the resilience layer: the acceptance
//! properties the ISSUE locks.
//!
//! 1. **Determinism**: the resilience sweep — chaos campaigns included
//!    — is byte-identical across `--jobs 1` and `--jobs 4`.
//! 2. **Goodput recovery** (acceptance a): under a storm, the
//!    deterministically-trapping ABIs (purecap, benchmark) serve
//!    strictly more correct responses with retries + breaker than the
//!    naive tier does.
//! 3. **Silent corruption is invisible** (acceptance b): hybrid's
//!    silent-corruption count is identical under every policy tier —
//!    no reliability mechanism can see a poisoned 200.
//! 4. **Bounded recovery** (acceptance c): after the storm window
//!    closes, windowed p99 returns to within 25% of the pre-storm
//!    baseline within a bounded number of simulated milliseconds.
//! 5. **Breaker lifecycle** and **retry budgets** at storm boundaries,
//!    and **shed ordering** (lowest-weight tenants first) under
//!    overload.

use cheri_isa::Abi;
use morello_serve::{
    default_tenants, resilience_metrics, run_resilience_sweep, simulate_resilient, BreakerPolicy,
    ChaosPlan, FaultStorm, ResilienceCell, ResiliencePolicy, ResilientSimParams, RetryPolicy,
    ServiceConfig, ShapeProfile, SweepConfig, TrafficModel,
};

fn quick_cfg(jobs: usize) -> SweepConfig {
    SweepConfig {
        quick: true,
        jobs,
        ..SweepConfig::default()
    }
}

fn cell<'a>(
    report: &'a morello_serve::ResilienceReport,
    abi: Abi,
    policy: &str,
    storm_ppm: u64,
) -> &'a ResilienceCell {
    report
        .abis
        .iter()
        .find(|a| a.abi == abi)
        .expect("abi present")
        .cells
        .iter()
        .find(|c| c.policy == policy && c.storm_ppm == storm_ppm)
        .expect("cell present")
}

#[test]
fn resilience_sweep_is_byte_identical_across_jobs() {
    let a = run_resilience_sweep(&quick_cfg(1));
    let b = run_resilience_sweep(&quick_cfg(4));
    let a_json = serde_json::to_string_pretty(&a).expect("serialise");
    let b_json = serde_json::to_string_pretty(&b).expect("serialise");
    assert_eq!(
        a_json, b_json,
        "BENCH_resilience.json must not depend on --jobs"
    );
    assert_eq!(resilience_metrics(&a), resilience_metrics(&b));
}

#[test]
fn acceptance_goodput_silence_and_recovery() {
    let report = run_resilience_sweep(&quick_cfg(2));
    let storm = *report.storm_ppm.last().expect("a storm intensity");
    assert!(storm > 0, "quick sweep must include a real storm");

    // (a) Goodput under storm is strictly higher with retries + breaker
    // than naive, for both deterministically-trapping ABIs.
    for abi in [Abi::Purecap, Abi::Benchmark] {
        let naive = cell(&report, abi, "naive", storm);
        let resilient = cell(&report, abi, "resilient", storm);
        assert!(
            resilient.completed > naive.completed,
            "{abi}: resilient must out-serve naive under storm \
             ({} vs {})",
            resilient.completed,
            naive.completed
        );
        assert!(
            resilient.goodput_rps > naive.goodput_rps,
            "{abi}: goodput must improve ({} vs {})",
            resilient.goodput_rps,
            naive.goodput_rps
        );
        // The recovered requests really are retried traps.
        assert!(resilient.retries > 0);
        assert!(resilient.errors < naive.errors);
    }

    // (b) Hybrid's silent-corruption count is identical under every
    // policy tier: reliability machinery cannot see a poisoned 200.
    let hybrid_naive = cell(&report, Abi::Hybrid, "naive", storm);
    assert!(
        hybrid_naive.silent > 0,
        "the storm must actually corrupt hybrid responses"
    );
    for policy in &report.policies {
        let c = cell(&report, Abi::Hybrid, policy, storm);
        assert_eq!(
            c.silent, hybrid_naive.silent,
            "policy `{policy}` must not change hybrid's silent count"
        );
    }
    // And the trapping ABIs never serve corrupt bytes at all.
    for abi in [Abi::Purecap, Abi::Benchmark] {
        for policy in &report.policies {
            assert_eq!(cell(&report, abi, policy, storm).silent, 0);
        }
    }

    // (c) Post-storm recovery to (near) the pre-storm p99 within a
    // bounded number of simulated milliseconds, for every tier of the
    // trapping ABIs. The whole quick run simulates ~100 ms; recovery
    // beyond a quarter of it means the backlog never drained.
    let run_ms = report.requests_per_cell as f64 / report.offered_rps * 1e3;
    for abi in [Abi::Purecap, Abi::Benchmark, Abi::Hybrid] {
        for policy in &report.policies {
            let c = cell(&report, abi, policy, storm);
            let rec = c
                .recovery_ms
                .unwrap_or_else(|| panic!("{abi}/{policy}: p99 must recover after the storm"));
            assert!(
                rec <= run_ms / 4.0,
                "{abi}/{policy}: recovery {rec:.2} ms exceeds bound {:.2} ms",
                run_ms / 4.0
            );
        }
    }

    // Calm cells (storm 0) are invariant across measurement-only
    // differences: naive and resilient serve identical request sets.
    for abi in [Abi::Purecap, Abi::Benchmark, Abi::Hybrid] {
        let naive = cell(&report, abi, "naive", 0);
        let resilient = cell(&report, abi, "resilient", 0);
        assert_eq!(naive.completed, resilient.completed);
        assert_eq!(naive.errors + naive.timeouts, 0);
        assert!((naive.retry_amplification - 1.0).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Focused scenario tests against simulate_resilient directly.
// ---------------------------------------------------------------------------

fn shape(cycles: u64, fault: Option<(u64, morello_serve::FaultClass)>) -> ShapeProfile {
    ShapeProfile {
        key: "shape".into(),
        abi: Abi::Purecap,
        degraded: false,
        service_cycles: cycles,
        retired: cycles,
        allocs: 2,
        attempts: 1,
        fault: fault.map(|(cycles, class)| morello_serve::FaultProfile { cycles, class }),
    }
}

fn service(seed: u64, fault_ppm: u64) -> ServiceConfig {
    ServiceConfig {
        cores: 2,
        queue_per_tenant: 128,
        quantum_cycles: 1_000_000,
        fault_rate_ppm: fault_ppm,
        seed,
        traffic: TrafficModel::Poisson,
    }
}

#[test]
fn breaker_opens_under_storm_and_recovers_at_the_boundary() {
    // One tenant, total trap storm mid-run, no retries: consecutive
    // failures trip the breaker, the open breaker fast-fails arrivals,
    // and half-open probes re-close it once the storm passes.
    let profiles = vec![shape(
        400_000,
        Some((100_000, morello_serve::FaultClass::Trapped)),
    )];
    let specs = default_tenants(1);
    let cfg = service(3, 0);
    let mut policy = ResiliencePolicy::standard(400_000, 40_000_000, 12_500_000);
    policy.retry = None;
    policy.breaker = Some(BreakerPolicy {
        failure_threshold: 5,
        open_cycles: 40_000_000,
        half_open_probes: 2,
        close_after: 2,
    });
    // 6000 arrivals at 500 rps on the 2.5 GHz clock ≈ 30 G cycles.
    let horizon: u64 = 30_000_000_000;
    let chaos = ChaosPlan {
        storms: vec![FaultStorm {
            start: horizon / 4,
            end: horizon / 2,
            fault_ppm: 1_000_000,
        }],
        heap_spikes: vec![],
        outages: vec![],
    };
    let r = simulate_resilient(&ResilientSimParams {
        config: &cfg,
        policy: &policy,
        chaos: &chaos,
        profiles: &profiles,
        specs: &specs,
        abi: Abi::Purecap,
        offered_rps: 500.0,
        clock_ghz: 2.5,
        requests: 6_000,
    });
    assert!(r.breaker_opens >= 1, "the storm must trip the breaker");
    assert!(r.breaker_rejected > 0, "an open breaker must fast-fail");
    assert!(
        r.tenants[0].breaker_closed_at_end,
        "probes must re-close the breaker after the storm"
    );
    // Service resumed after the storm: far more served than the
    // pre-storm window alone could account for.
    assert!(r.completed > r.arrivals / 2);
}

#[test]
fn retry_budget_caps_amplification_under_total_failure() {
    // Every attempt faults (trap) the whole run. Unbudgeted, three
    // attempts each would triple the work; a 300‰ budget holds
    // amplification near 1.3 no matter how long the storm runs.
    let profiles = vec![shape(
        500_000,
        Some((100_000, morello_serve::FaultClass::Trapped)),
    )];
    let specs = default_tenants(2);
    let cfg = service(7, 1_000_000);
    let mut policy = ResiliencePolicy::standard(500_000, 50_000_000, 12_500_000);
    policy.retry = Some(RetryPolicy {
        max_attempts: 3,
        base_backoff_cycles: 100_000,
        max_backoff_cycles: 2_000_000,
        budget_per_mille: 300,
    });
    policy.breaker = None; // isolate the budget from breaker fast-fail
    let r = simulate_resilient(&ResilientSimParams {
        config: &cfg,
        policy: &policy,
        chaos: &ChaosPlan::none(),
        profiles: &profiles,
        specs: &specs,
        abi: Abi::Purecap,
        offered_rps: 300.0,
        clock_ghz: 2.5,
        requests: 5_000,
    });
    let amp = r.amplification();
    assert!(amp > 1.2, "the budget must still grant retries: {amp}");
    assert!(
        amp <= 1.32,
        "amplification must stay near the 300‰ budget: {amp}"
    );
    assert!(r.retries > 0);
}

#[test]
fn shedding_drops_low_weight_tenants_before_slo_bearing_ones() {
    // Two lightweight tenants and one weight-8 SLO-bearing tenant,
    // offered well past capacity with a tight SLO: the controller must
    // shed the lightweights and never the heavyweight.
    let profiles = vec![shape(1_000_000, None)];
    let mut specs = default_tenants(3);
    specs[2].weight = 8;
    let cfg = service(11, 0);
    let policy = ResiliencePolicy::naive(2_000_000, 6_000_000).with_shedding();
    let r = simulate_resilient(&ResilientSimParams {
        config: &cfg,
        policy: &policy,
        chaos: &ChaosPlan::none(),
        profiles: &profiles,
        specs: &specs,
        abi: Abi::Purecap,
        offered_rps: 9_000.0,
        clock_ghz: 2.5,
        requests: 9_000,
    });
    assert!(r.shed > 0, "overload must trigger shedding");
    assert!(r.tenants[0].counters.shed > 0, "lightweight tenant-0 sheds");
    assert!(r.tenants[1].counters.shed > 0, "lightweight tenant-1 sheds");
    assert_eq!(
        r.tenants[2].counters.shed, 0,
        "the SLO-bearing heavyweight is never shed"
    );
    // The protected tenant keeps serving through the overload: it
    // completes more than either shed tenant.
    assert!(
        r.tenants[2].counters.completed > r.tenants[0].counters.completed
            && r.tenants[2].counters.completed > r.tenants[1].counters.completed,
        "the protected tenant must out-serve the shed tenants"
    );
}

#[test]
fn chaos_campaigns_are_identical_across_jobs_via_the_sweep() {
    // The chaos plan is derived from seeds, never scheduling: two
    // sweeps at different jobs counts must produce identical storm
    // windows in the report (already covered byte-for-byte by
    // `resilience_sweep_is_byte_identical_across_jobs`; this pins the
    // chaos-specific fields explicitly so a schema change cannot
    // silently drop them).
    let a = run_resilience_sweep(&quick_cfg(1));
    let b = run_resilience_sweep(&quick_cfg(3));
    for (aa, ab) in a.abis.iter().zip(&b.abis) {
        for (ca, cb) in aa.cells.iter().zip(&ab.cells) {
            assert_eq!(ca.storm_start_ms, cb.storm_start_ms);
            assert_eq!(ca.storm_end_ms, cb.storm_end_ms);
            assert_eq!(ca.recovery_ms, cb.recovery_ms);
            assert_eq!(ca.breaker_opens, cb.breaker_opens);
        }
    }
}
