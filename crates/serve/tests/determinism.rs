//! Integration tests for the serving subsystem: the three properties
//! the ISSUE locks.
//!
//! 1. **Determinism**: the sweep report — every row of it — is
//!    byte-identical across `--jobs 1` and `--jobs 4` for a fixed seed.
//! 2. **Fairness**: deficit round robin stops a heavy tenant from
//!    starving light tenants under overload.
//! 3. **Saturation**: crossing an ABI's capacity the p999 sojourn time
//!    never decreases, and purecap saturates at a lower offered load
//!    than hybrid.

use cheri_isa::Abi;
use morello_serve::{
    run_service_sweep, service_metrics, simulate, ServiceConfig, ShapeProfile, SweepConfig,
    TenantSpec, TrafficModel,
};
use morello_sim::StrategyKind;

fn quick_cfg(jobs: usize) -> SweepConfig {
    SweepConfig {
        quick: true,
        jobs,
        ..SweepConfig::default()
    }
}

#[test]
fn sweep_is_byte_identical_across_jobs() {
    let a = run_service_sweep(&quick_cfg(1));
    let b = run_service_sweep(&quick_cfg(4));
    let a_json = serde_json::to_string_pretty(&a).expect("serialise");
    let b_json = serde_json::to_string_pretty(&b).expect("serialise");
    assert_eq!(
        a_json, b_json,
        "BENCH_service.json must not depend on --jobs"
    );
    // Row-level check too, so a future serialisation change cannot mask
    // a real divergence in the numbers bench_compare gates on.
    assert_eq!(service_metrics(&a), service_metrics(&b));
}

#[test]
fn sweep_shows_the_throughput_gap_and_saturation() {
    let report = run_service_sweep(&quick_cfg(2));
    let abi = |want: Abi| {
        report
            .abis
            .iter()
            .find(|a| a.abi == want)
            .expect("abi present")
    };
    let hybrid = abi(Abi::Hybrid);
    let purecap = abi(Abi::Purecap);

    // The serving restatement of the paper's throughput gap: purecap's
    // per-request demand is higher, so at the same absolute offered
    // loads it saturates strictly earlier than hybrid.
    assert!(
        purecap.capacity_rps < hybrid.capacity_rps,
        "purecap capacity {} !< hybrid {}",
        purecap.capacity_rps,
        hybrid.capacity_rps
    );
    assert!(
        purecap.saturation_offered_rps < hybrid.saturation_offered_rps,
        "purecap saturation {} !< hybrid {}",
        purecap.saturation_offered_rps,
        hybrid.saturation_offered_rps
    );

    for a in &report.abis {
        // Below saturation throughput tracks the offered rate.
        for p in a.points.iter().filter(|p| p.offered_ratio <= 0.5) {
            let err = (p.throughput_rps - p.offered_rps).abs() / p.offered_rps;
            assert!(
                err < 0.1,
                "{} at {:.2}: tput {} vs offered {}",
                a.abi,
                p.offered_ratio,
                p.throughput_rps,
                p.offered_rps
            );
        }
        // Crossing capacity the tail never recovers: p999 is
        // non-decreasing from the last under-capacity point onward.
        let tail: Vec<f64> = a
            .points
            .iter()
            .filter(|p| p.offered_rps >= 0.75 * a.capacity_rps)
            .map(|p| p.p999_ms)
            .collect();
        assert!(tail.len() >= 2, "sweep must cross {}'s capacity", a.abi);
        for w in tail.windows(2) {
            assert!(
                w[1] >= w[0],
                "{}: p999 fell from {} to {} crossing capacity",
                a.abi,
                w[0],
                w[1]
            );
        }
        // And the overloaded tail is far above the lightly-loaded one.
        let first = a.points.first().expect("points");
        let last = a.points.last().expect("points");
        assert!(
            last.p999_ms > 2.0 * first.p999_ms,
            "{}: no tail growth",
            a.abi
        );
    }
}

fn flat_profile(key: &str, cycles: u64) -> ShapeProfile {
    ShapeProfile {
        key: key.to_owned(),
        abi: Abi::Purecap,
        degraded: false,
        service_cycles: cycles,
        retired: cycles,
        allocs: 2,
        attempts: 1,
        fault: None,
    }
}

#[test]
fn heavy_tenant_cannot_starve_light_tenants() {
    // One shape, 1M cycles: capacity = 2 cores × 2.5 GHz / 1M = 5000
    // rps. Offer 12000 rps with tenant-0 sending 90% of the traffic:
    // its own demand (10800 rps) dwarfs the machine, but DRR caps what
    // it can take, so the light tenants' 600 rps each must ride through
    // without a single drop.
    let profiles = [flat_profile("svc", 1_000_000)];
    let mk = |name: &str, share: f64| TenantSpec {
        name: name.to_owned(),
        policy: StrategyKind::CapabilityPadded,
        weight: 1,
        traffic_share: share,
    };
    let specs = vec![mk("heavy", 0.90), mk("light-a", 0.05), mk("light-b", 0.05)];
    let config = ServiceConfig {
        cores: 2,
        queue_per_tenant: 64,
        quantum_cycles: 1_000_001,
        fault_rate_ppm: 0,
        seed: 0xFA112,
        traffic: TrafficModel::Poisson,
    };
    let r = simulate(
        &config,
        &profiles,
        &specs,
        Abi::Purecap,
        12_000.0,
        2.5,
        8_000,
    );

    let heavy = &r.tenants[0];
    let lights = &r.tenants[1..];
    assert!(
        heavy.counters.dropped > 0,
        "the overloaded tenant must feel the backpressure"
    );
    for t in lights {
        assert_eq!(
            t.counters.dropped, 0,
            "light tenant {} was starved ({} drops)",
            t.name, t.counters.dropped
        );
        assert!(
            t.counters.completed > 0,
            "light tenant {} served nothing",
            t.name
        );
    }
    // DRR also bounds the light tenants' queueing delay: their p99 must
    // sit well below the heavy tenant's, which queues behind itself.
    let light_p99 = lights
        .iter()
        .map(|t| t.latency.quantile(0.99))
        .max()
        .unwrap();
    let heavy_p99 = heavy.latency.quantile(0.99);
    assert!(
        light_p99 < heavy_p99 / 2,
        "light p99 {light_p99} not clearly below heavy p99 {heavy_p99}"
    );
}
