//! Component micro-benchmarks: the simulator's own hot paths.

use cheri_cap::{representable_alignment_mask, round_representable_length, Capability};
use cheri_isa::{Abi, Interp, InterpConfig, MemSize, NullSink, ProgramBuilder};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morello_uarch::{Cache, CacheGeometry, Gshare, TimingCore, UarchConfig};

fn bench_capability(c: &mut Criterion) {
    let mut g = c.benchmark_group("capability");
    let cap = Capability::root_rw()
        .set_bounds_exact(0x10_0000, 4096)
        .unwrap();
    g.bench_function("compress_roundtrip", |b| {
        b.iter(|| {
            let cc = black_box(cap).to_compressed();
            black_box(Capability::from_compressed(cc, true))
        })
    });
    g.bench_function("set_bounds_exact", |b| {
        let root = Capability::root_rw();
        b.iter(|| {
            root.set_bounds_exact(black_box(0x10_0000), black_box(4096))
                .unwrap()
        })
    });
    g.bench_function("representability_math", |b| {
        b.iter(|| {
            let len = black_box(1_234_567u64);
            (
                round_representable_length(len),
                representable_alignment_mask(len),
            )
        })
    });
    g.bench_function("check_access", |b| {
        b.iter(|| cap.check_access(black_box(0x10_0040), 8, cheri_cap::Perms::LOAD))
    });
    g.finish();
}

fn bench_uarch(c: &mut Criterion) {
    let mut g = c.benchmark_group("uarch");
    g.bench_function("l1d_access_hit", |b| {
        let mut cache = Cache::new(CacheGeometry::new(64 << 10, 4, 64));
        cache.access(0x1000, false);
        b.iter(|| cache.access(black_box(0x1000), false))
    });
    g.bench_function("gshare_predict_update", |b| {
        let mut bp = Gshare::new(13);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let t = bp.predict(black_box(0x4000));
            bp.update(0x4000, i & 1 == 0);
            t
        })
    });
    g.finish();
}

fn interp_program(abi: Abi) -> cheri_isa::Program {
    let mut b = ProgramBuilder::new("bench", abi);
    let gbuf = b.global_zero("buf", 64 << 10);
    let main = b.function("main", 0, |f| {
        let p = f.vreg();
        f.lea_global(p, gbuf, 0);
        let n = f.vreg();
        f.mov_imm(n, 20_000);
        let acc = f.vreg();
        f.mov_imm(acc, 0);
        f.for_loop(0, n, 1, |f, i| {
            let idx = f.vreg();
            f.and(idx, i, 8191);
            let v = f.vreg();
            f.load_int_idx(v, p, idx, MemSize::S8);
            f.add(acc, acc, v);
            f.store_int_idx(acc, p, idx, MemSize::S8);
        });
        f.halt_code(acc);
    });
    b.set_entry(main);
    b.lower()
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    for abi in [Abi::Hybrid, Abi::Purecap] {
        let prog = interp_program(abi);
        // ~120k retired instructions per run.
        g.throughput(Throughput::Elements(120_000));
        g.bench_function(format!("functional_{abi}"), |b| {
            b.iter(|| {
                Interp::new(InterpConfig::default())
                    .run(black_box(&prog), &mut NullSink)
                    .unwrap()
            })
        });
        g.bench_function(format!("with_timing_{abi}"), |b| {
            b.iter(|| {
                let mut core = TimingCore::new(UarchConfig::neoverse_n1_morello());
                Interp::new(InterpConfig::default())
                    .run(black_box(&prog), &mut core)
                    .unwrap();
                core.finish()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_capability, bench_uarch, bench_interp);
criterion_main!(benches);
