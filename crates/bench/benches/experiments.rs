//! Experiment benches: every table/figure path of the paper, exercised at
//! `Scale::Test` so `cargo bench` regenerates each one end-to-end.

use cheri_isa::Abi;
use cheri_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use morello_bench::experiments;
use morello_sim::suite::{run_suite_with, select, SuiteConfig, SuiteRow, TABLE4_KEYS};
use morello_sim::{project, Platform, ProgramCache, Runner};

const BENCH_KEYS: [&str; 5] = [
    "lbm_519",
    "omnetpp_520",
    "xalancbmk_523",
    "sqlite",
    "quickjs",
];

fn rows_with_jobs(jobs: usize, cache: &ProgramCache) -> Vec<SuiteRow> {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    run_suite_with(
        &runner,
        &select(&BENCH_KEYS),
        cache,
        &SuiteConfig::with_jobs(jobs),
    )
    .expect("suite runs")
}

fn test_rows() -> Vec<SuiteRow> {
    rows_with_jobs(0, &ProgramCache::new())
}

fn bench_tables_and_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    // The engine at one worker vs the host's parallelism, each with a
    // cold cache, plus the default path on a warm shared cache — the
    // three points that make the tentpole speedup visible in CI logs.
    g.bench_function("suite_run_test_scale_jobs1_cold", |b| {
        b.iter(|| rows_with_jobs(1, &ProgramCache::new()))
    });
    g.bench_function("suite_run_test_scale_cold", |b| b.iter(test_rows));
    let warm = ProgramCache::new();
    rows_with_jobs(0, &warm);
    g.bench_function("suite_run_test_scale_warm_cache", |b| {
        b.iter(|| rows_with_jobs(0, &warm))
    });

    let rows = test_rows();
    g.bench_function("fig1_overall", |b| {
        b.iter(|| experiments::fig1_overall(&rows))
    });
    g.bench_function("fig2_binsize", |b| {
        b.iter(|| experiments::fig2_binsize(&rows))
    });
    g.bench_function("fig3_table4_topdown", |b| {
        b.iter(|| experiments::fig3_table4_topdown(&rows))
    });
    g.bench_function("fig4_bounds", |b| {
        b.iter(|| experiments::fig4_bounds(&rows))
    });
    g.bench_function("fig5_instmix", |b| {
        b.iter(|| {
            (
                experiments::fig5_instmix(&rows),
                experiments::fig5_shift_summary(&rows),
            )
        })
    });
    g.bench_function("fig6_membound", |b| {
        b.iter(|| experiments::fig6_membound(&rows))
    });
    g.bench_function("fig7_correlation", |b| {
        b.iter(|| experiments::fig7_correlation(&rows, Abi::Purecap))
    });
    g.bench_function("table2_memory_intensity", |b| {
        b.iter(|| experiments::table2_memory_intensity(&rows))
    });
    g.bench_function("table3_key_metrics", |b| {
        b.iter(|| experiments::table3_key_metrics(&rows))
    });
    g.finish();

    let mut g = c.benchmark_group("projection");
    g.sample_size(10);
    let platform = Platform::morello().with_scale(Scale::Test);
    let w = cheri_workloads::by_key(TABLE4_KEYS[1]).unwrap(); // omnetpp
    g.bench_function("ablation_projection_one_workload", |b| {
        b.iter(|| project(platform, &w).expect("projection runs"))
    });
    g.finish();
}

criterion_group!(benches, bench_tables_and_figures);
criterion_main!(benches);
