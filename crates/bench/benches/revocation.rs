//! Sweep-throughput micro-benchmarks for the revocation subsystem:
//! granules visited per second at small and medium quarantine sizes.

use cheri_cap::Capability;
use cheri_mem::{TaggedMemory, CAP_GRANULE};
use cheri_revoke::RevocationEpoch;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const LO: u64 = 0x4010_0000;
const BM: u64 = 0x4008_0000;

/// Builds an arena of `blocks` 1 KiB blocks, each holding data and a
/// tagged capability pointing back at the block; every second block is
/// marked revoked (a half-stale quarantine, the sweep's working case).
fn prepare(blocks: u64) -> (TaggedMemory, RevocationEpoch, Vec<(u64, u64)>) {
    let mut mem = TaggedMemory::new();
    let root = Capability::root_rw();
    let mut ranges = Vec::new();
    for i in 0..blocks {
        let base = LO + i * 1024;
        mem.write_u64(base, i).unwrap();
        let cap = root.set_bounds_exact(base, 512).unwrap();
        mem.store_cap(base + CAP_GRANULE, cap.to_compressed(), true)
            .unwrap();
        if i % 2 == 0 {
            ranges.push((base, 1024));
        }
    }
    (mem, RevocationEpoch::new(BM, LO), ranges)
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("revocation_sweep");
    for (label, blocks) in [("small_64KiB", 64u64), ("medium_1MiB", 1024)] {
        let span_hi = LO + blocks * 1024;
        let (mut mem, eng, ranges) = prepare(blocks);
        // Prime once so every iteration measures the steady state: the
        // stale tags are already cleared, but the sweep still walks the
        // full arena (every granule of every touched page).
        let granules = eng.sweep(&mut mem, &ranges, LO, span_hi).granules_visited;
        g.throughput(Throughput::Elements(granules));
        g.bench_function(label, |b| {
            b.iter(|| eng.sweep(&mut mem, &ranges, LO, span_hi))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
