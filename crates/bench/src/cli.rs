//! The shared command-line front-end of the figure/table binaries.
//!
//! Every experiment binary historically re-parsed the same four flags
//! (`--jobs`, `--out`, `--trace`, `--journal`) plus `MORELLO_SCALE` by
//! hand at the top of `main`. [`BenchCli::parse`] bundles that into one
//! call: it arms the trace guard, resolves the scale and worker count,
//! notes `--quick`, and remembers the artefact name so
//! [`BenchCli::write_json`] lands the JSON in the standard place
//! (`--out <path>`, `-` for stdout, default `target/experiments/`).

use crate::TraceGuard;
use cheri_workloads::Scale;
use morello_obs::JsonlJournal;
use std::path::PathBuf;

/// Returns `true` when the bare flag `--<name>` is on the command line
/// (presence-only flags like `--quick`, as opposed to the valued flags
/// [`morello_pmu::flag_value`] parses).
pub fn flag_present(name: &str) -> bool {
    let want = format!("--{name}");
    std::env::args().any(|a| a == want)
}

/// The parsed shared flags of one experiment binary invocation.
pub struct BenchCli {
    /// Artefact name (`fig11_service`, …) — the default JSON file stem.
    pub name: &'static str,
    /// `MORELLO_SCALE` (test/small/default).
    pub scale: Scale,
    /// `--jobs N` / `MORELLO_JOBS` / available parallelism. Worker
    /// fan-out only; never affects computed results.
    pub jobs: usize,
    /// `--quick` was given: binaries that support it shrink their sweep.
    pub quick: bool,
    /// `--journal <path>`: append per-cell JSONL run records there.
    pub journal: Option<PathBuf>,
    _trace: TraceGuard,
}

impl BenchCli {
    /// Parses the shared flags and arms `--trace` support. Call once at
    /// the top of `main` and keep the value alive (dropping it flushes
    /// the trace).
    pub fn parse(name: &'static str) -> BenchCli {
        let trace = crate::init_trace();
        let args: Vec<String> = std::env::args().collect();
        BenchCli {
            name,
            scale: crate::scale_from_env(),
            jobs: crate::jobs_from_env(),
            quick: flag_present("quick"),
            journal: morello_pmu::journal_flag(&args),
            _trace: trace,
        }
    }

    /// Opens the `--journal` path for appending, exiting with a
    /// diagnostic (status 1) when it cannot be opened; `None` without
    /// the flag.
    pub fn open_journal(&self) -> Option<JsonlJournal> {
        self.journal.as_ref().map(|path| {
            let j = JsonlJournal::append(path).unwrap_or_else(|e| {
                eprintln!("could not open journal {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!("(run journal: {})", path.display());
            j
        })
    }

    /// Writes the binary's JSON artefact under its registered name (see
    /// [`crate::write_json`]).
    pub fn write_json(&self, value: &impl serde::Serialize) {
        crate::write_json(self.name, value);
    }
}
