//! §5 projection / ablation: how much purecap overhead each of the three
//! Morello artefact fixes removes (PCC-aware branch predictor, wide
//! capability store buffer, capability MADD), per workload.
//!
//! Flags: `--out <path>` (JSON artefact; `-` = stdout), `--trace <path>`
//! (phase trace: Chrome JSON + JSONL).

use cheri_workloads::by_key;
use morello_bench::{harness_runner, human, write_json};
use morello_pmu::Table;
use morello_sim::{project_with, ProgramCache};

const KEYS: [&str; 7] = [
    "omnetpp_520",
    "xalancbmk_523",
    "leela_541",
    "deepsjeng_531",
    "sqlite",
    "quickjs",
    "lbm_519",
];

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let platform = *runner.platform();
    let cache = ProgramCache::new();
    let mut t = Table::new(&[
        "Benchmark",
        "morello",
        "+pcc-aware BP",
        "+wide cap SB",
        "+cap MADD",
        "projected (all)",
        "overhead removed",
    ]);
    let mut rows = Vec::new();
    let _sweep = morello_bench::trace_phase("sweep projection ladder", "sweep");
    for key in KEYS {
        let Some(w) = by_key(key) else {
            eprintln!("error: unknown workload `{key}`");
            std::process::exit(1);
        };
        let row = project_with(platform, &w, &cache)
            .unwrap_or_else(|e| morello_bench::exit_with_error("projection failed", &e));
        t.row(&[
            row.name.clone(),
            format!("{:.3}x", row.morello_slowdown),
            format!("{:.3}x", row.pcc_aware_slowdown),
            format!("{:.3}x", row.wide_sb_slowdown),
            format!("{:.3}x", row.cap_madd_slowdown),
            format!("{:.3}x", row.projected_slowdown),
            format!("{:.0}%", row.overhead_removed() * 100.0),
        ]);
        rows.push(row);
    }
    human!("Projection: purecap slowdown under improved microarchitectures");
    human!("{}", t.render());
    write_json("ablation_projection", &rows);
}
