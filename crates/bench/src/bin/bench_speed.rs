//! `bench_speed`: how fast does the reproduction itself run?
//!
//! Drives a fixed workload × ABI matrix and writes a schema-versioned
//! `BENCH_interp.json` at the repo root: per-ABI host-side retired
//! instructions per second, suite wall-clock at `--jobs {1,N}`,
//! lowered-program cache hit rate, simulated-vs-host throughput
//! ratios, per-opcode-class model attribution, and the observer-effect
//! overhead of sampling/tracing. The `model` section is deterministic
//! (gated by `bench_compare`); every host field carries a `host_`
//! prefix and is informational only.
//!
//! ```text
//! cargo run --release -p morello-bench --bin bench_speed -- --quick
//! ```
//!
//! Flags: `--quick` (golden five at test scale; default: Table 3 set at
//! `MORELLO_SCALE`), `--jobs N` (parallel-sweep worker count),
//! `--out <path>` (default `BENCH_interp.json`; `-` = stdout),
//! `--trace <path>` (phase trace: Chrome JSON + JSONL),
//! `--block-hist <path>` (write the model's dispatch subsection — the
//! engine's dispatch mode plus per-ABI superblock block-size
//! histogram — as a standalone JSON artefact).

use morello_bench::speed::{run_bench, speed_table};
use morello_bench::{exit_with_error, human, jobs_from_env};
use std::path::{Path, PathBuf};

fn main() {
    let _trace = morello_bench::init_trace();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = jobs_from_env();
    let report = run_bench(quick, jobs, morello_bench::span_sink())
        .unwrap_or_else(|e| exit_with_error("bench_speed failed", &e));

    human!(
        "bench_speed ({}, scale {}, jobs {}):",
        if quick { "quick" } else { "full" },
        report.scale,
        jobs
    );
    human!("{}", speed_table(&report).render());
    human!(
        "suite wall-clock: {:.3}s @ jobs=1, {:.3}s @ jobs={jobs} ({:.2}x); cache hit rate {:.2}",
        report.host.host_wall_seconds_jobs1,
        report.host.host_wall_seconds_jobs_n,
        report.host.host_parallel_speedup,
        report.model.cache.hit_rate
    );
    let oe = &report.host.host_observer_effect;
    human!(
        "observer effect on {} {}: sampling {:.2}x, tracing {:.2}x vs plain",
        oe.workload,
        oe.abi,
        oe.host_sampling_overhead,
        oe.host_tracing_overhead
    );

    if let Some(path) = args
        .iter()
        .position(|a| a == "--block-hist")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--block-hist="))
                .map(PathBuf::from)
        })
    {
        match morello_pmu::write_json_out(&path, &report.model.dispatch) {
            Ok(()) => eprintln!("(block-size histogram: {})", path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    let out = morello_pmu::out_flag(&args).unwrap_or_else(|| PathBuf::from("BENCH_interp.json"));
    if out == Path::new("-") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("could not serialise report: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match morello_pmu::write_json_out(&out, &report) {
        Ok(()) => eprintln!("(bench report: {})", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
