//! `bench_compare`: the perf-regression gate over two
//! `BENCH_interp.json` files.
//!
//! Diffs the deterministic `model` sections (retired, cycles, simulated
//! seconds, per-opcode-class attribution, cache hit rate) and exits
//! nonzero when any metric moved by more than `--threshold` percent in
//! either direction — the model has no noise, so any movement is a real
//! behaviour change. Host (`host_*`) wall-clock fields are never
//! compared.
//!
//! ```text
//! bench_compare docs/results/BENCH_interp.baseline.json BENCH_interp.json --threshold 10
//! ```
//!
//! Exit codes: 0 = within threshold, 1 = regression, 2 = usage/schema
//! error.

use morello_bench::speed::{compare, diff_table, BenchReport};
use std::path::Path;

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("could not read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("could not parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut threshold = 5.0_f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let raw = if arg == "--threshold" {
            it.next().map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--threshold=") {
            Some(v)
        } else if arg.starts_with("--") {
            eprintln!("unknown flag `{arg}`");
            std::process::exit(2);
        } else {
            positional.push(arg);
            continue;
        };
        threshold = raw.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("invalid --threshold value (expected a percentage)");
            std::process::exit(2);
        });
    }
    let [base_path, new_path] = positional.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--threshold <pct>]");
        std::process::exit(2);
    };

    let base = load(base_path);
    let new = load(new_path);
    if base.schema_version != new.schema_version {
        eprintln!(
            "schema mismatch: baseline v{} vs candidate v{} — regenerate the baseline",
            base.schema_version, new.schema_version
        );
        std::process::exit(2);
    }

    let outcome = compare(&base, &new, threshold);
    if outcome.diffs.is_empty() && outcome.regressions.is_empty() {
        println!("bench_compare: model sections identical (threshold {threshold}%)");
        return;
    }
    if !outcome.diffs.is_empty() {
        println!("model metrics that moved:");
        println!("{}", diff_table(&outcome.diffs).render());
    }
    if outcome.regressions.is_empty() {
        println!(
            "bench_compare: {} metric(s) moved, all within {threshold}%",
            outcome.diffs.len()
        );
        return;
    }
    eprintln!(
        "bench_compare: {} metric(s) beyond {threshold}%:",
        outcome.regressions.len()
    );
    eprintln!("{}", diff_table(&outcome.regressions).render());
    std::process::exit(1);
}
