//! `bench_compare`: the perf-regression gate over two
//! `BENCH_interp.json` — or two `BENCH_service.json` — files.
//!
//! Diffs the deterministic `model` sections (retired, cycles, simulated
//! seconds, per-opcode-class attribution, cache hit rate) and exits
//! nonzero when any metric moved by more than `--threshold` percent in
//! either direction — the model has no noise, so any movement is a real
//! behaviour change. Host (`host_*`) wall-clock fields are never
//! compared.
//!
//! `--min-host-rate <insts/sec>` additionally gates the *candidate*'s
//! engine-leg throughput (`host_insts_per_sec`, per ABI) against a
//! lower bound: the pre-decoded fast path runs far above any reference
//! fall-back, so a floor catches the fast path silently degrading even
//! though host wall-clock is never diffed against the baseline.
//!
//! ```text
//! bench_compare docs/results/BENCH_interp.baseline.json BENCH_interp.json \
//!     --threshold 10 --min-host-rate 5e7
//! ```
//!
//! Both documents of a run must be the same kind, discriminated by the
//! top-level `kind` field: `"service"` parses as a `ServiceReport` and
//! is gated on `morello_serve::service_metrics`; `"resilience"` parses
//! as a `ResilienceReport` and is gated on
//! `morello_serve::resilience_metrics` (goodput, SLO attainment, retry
//! amplification, p99, silent counts per cell — all deterministic); a
//! missing `kind` parses as an interpreter `BenchReport`. A kind
//! mismatch is a usage error (exit 2) naming both kinds.
//! `--min-host-rate` applies to interpreter reports only.
//!
//! Exit codes: 0 = within threshold, 1 = regression or floor violation,
//! 2 = usage/schema error.

use morello_bench::speed::{
    compare, compare_metric_sets, diff_table, host_rate_floor, BenchReport, CompareOutcome,
};
use morello_pmu::fmt_metric;
use morello_serve::{resilience_metrics, service_metrics, ResilienceReport, ServiceReport};
use std::path::Path;

fn load_text(path: &str) -> String {
    std::fs::read_to_string(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("could not read {path}: {e}");
        std::process::exit(2);
    })
}

fn parse<T: serde::Deserialize>(path: &str, text: &str) -> T {
    serde_json::from_str(text).unwrap_or_else(|e| {
        eprintln!("could not parse {path}: {e}");
        std::process::exit(2);
    })
}

/// The document kind, from the top-level `kind` discriminator. Interp
/// reports predate the field, so its absence means `interp`.
fn doc_kind(text: &str) -> String {
    let Ok(value) = serde_json::from_str::<serde::Value>(text) else {
        return "interp".to_owned();
    };
    let serde::Value::Map(entries) = &value else {
        return "interp".to_owned();
    };
    match serde::map_get(entries, "kind") {
        Some(serde::Value::Str(kind)) => kind.clone(),
        _ => "interp".to_owned(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut threshold = 5.0_f64;
    let mut min_host_rate: Option<f64> = None;
    let parse_num = |flag: &str, raw: Option<&str>| -> f64 {
        raw.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("invalid {flag} value (expected a number)");
            std::process::exit(2);
        })
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            threshold = parse_num("--threshold", it.next().map(String::as_str));
        } else if let Some(v) = arg.strip_prefix("--threshold=") {
            threshold = parse_num("--threshold", Some(v));
        } else if arg == "--min-host-rate" {
            min_host_rate = Some(parse_num("--min-host-rate", it.next().map(String::as_str)));
        } else if let Some(v) = arg.strip_prefix("--min-host-rate=") {
            min_host_rate = Some(parse_num("--min-host-rate", Some(v)));
        } else if arg.starts_with("--") {
            eprintln!("unknown flag `{arg}`");
            std::process::exit(2);
        } else {
            positional.push(arg);
        }
    }
    let [base_path, new_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <candidate.json> \
             [--threshold <pct>] [--min-host-rate <insts/sec>]"
        );
        std::process::exit(2);
    };

    let base_text = load_text(base_path);
    let new_text = load_text(new_path);
    let kind = {
        let base_kind = doc_kind(&base_text);
        let new_kind = doc_kind(&new_text);
        if base_kind != new_kind {
            eprintln!(
                "kind mismatch: baseline {base_path} is a `{base_kind}` report but \
                 candidate {new_path} is a `{new_kind}` report — compare like with like"
            );
            std::process::exit(2);
        }
        base_kind
    };
    if kind != "interp" && min_host_rate.is_some() {
        eprintln!("--min-host-rate does not apply to {kind} reports");
        std::process::exit(2);
    }

    let check_schema = |base: u64, new: u64| {
        if base != new {
            eprintln!(
                "schema mismatch: baseline v{base} vs candidate v{new} — regenerate the baseline"
            );
            std::process::exit(2);
        }
    };
    let mut failed = false;
    let outcome: CompareOutcome;
    let mut host_gate: Option<BenchReport> = None;
    match kind.as_str() {
        "service" => {
            let base: ServiceReport = parse(base_path, &base_text);
            let new: ServiceReport = parse(new_path, &new_text);
            check_schema(base.schema_version.into(), new.schema_version.into());
            outcome =
                compare_metric_sets(&service_metrics(&base), &service_metrics(&new), threshold);
        }
        "resilience" => {
            let base: ResilienceReport = parse(base_path, &base_text);
            let new: ResilienceReport = parse(new_path, &new_text);
            check_schema(base.schema_version.into(), new.schema_version.into());
            outcome = compare_metric_sets(
                &resilience_metrics(&base),
                &resilience_metrics(&new),
                threshold,
            );
        }
        "interp" => {
            let base: BenchReport = parse(base_path, &base_text);
            let new: BenchReport = parse(new_path, &new_text);
            check_schema(base.schema_version, new.schema_version);
            outcome = compare(&base, &new, threshold);
            host_gate = Some(new);
        }
        other => {
            eprintln!(
                "unknown report kind `{other}` in {base_path} — \
                 this bench_compare understands interp, service, and resilience"
            );
            std::process::exit(2);
        }
    }
    let section = if kind == "interp" {
        "model"
    } else {
        kind.as_str()
    };
    if outcome.diffs.is_empty() && outcome.regressions.is_empty() {
        println!("bench_compare: {section} sections identical (threshold {threshold}%)");
    } else {
        if !outcome.diffs.is_empty() {
            println!("{section} metrics that moved:");
            println!("{}", diff_table(&outcome.diffs).render());
        }
        if outcome.regressions.is_empty() {
            println!(
                "bench_compare: {} metric(s) moved, all within {threshold}%",
                outcome.diffs.len()
            );
        } else {
            eprintln!(
                "bench_compare: {} metric(s) beyond {threshold}%:",
                outcome.regressions.len()
            );
            eprintln!("{}", diff_table(&outcome.regressions).render());
            failed = true;
        }
    }

    if let (Some(min), Some(new)) = (min_host_rate, &host_gate) {
        let violations = host_rate_floor(new, min);
        if violations.is_empty() {
            println!(
                "bench_compare: engine-leg host_insts_per_sec >= {} on every ABI",
                fmt_metric(min)
            );
        } else {
            for (abi, rate) in &violations {
                eprintln!(
                    "bench_compare: {abi} engine leg ran at {} insts/s, below the {} floor \
                     — the fast path may have fallen back to the reference executor",
                    fmt_metric(*rate),
                    fmt_metric(min)
                );
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
