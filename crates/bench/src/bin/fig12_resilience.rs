//! Figure 12: resilient serving under seeded chaos — goodput, SLO
//! attainment, retry amplification, and time-to-recovery per ABI.
//!
//! Sweeps storm intensity × policy tier over the multi-tenant serving
//! simulator (see `morello-serve`): every cell endures the same seeded
//! chaos campaign (a fault storm, a tenant heap-pressure spike, a
//! one-core outage) under one of three reliability tiers — `naive`
//! (PR 7 semantics, no intervention), `resilient` (deadlines, budgeted
//! retries with decorrelated-jitter backoff, per-tenant circuit
//! breakers), and `full` (plus SLO-aware load shedding and hedged
//! requests). The headline: under a storm, the capability ABIs' faults
//! *trap deterministically*, so retries convert them into served
//! requests and goodput recovers — while hybrid's silent corruptions
//! look like well-formed 200s that no policy can see, so its poisoned
//! responses sail through every tier unimproved.
//!
//! Everything is simulated time: the sweep is byte-identical across
//! `--jobs` values for a fixed seed (CI diffs exactly that).
//!
//! Flags: `--quick` (fewer storm intensities and requests), `--jobs N`
//! (sweep fan-out; never affects results), `--fault-ppm N` (background
//! corruption rate outside storms), `--burst` (bursty arrivals),
//! `--seed N`, `--out <path>` (default `BENCH_resilience.json`;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{exit_with_error, flag_present, human, BenchCli};
use morello_pmu::{fmt_metric, Table};
use morello_serve::{run_resilience_sweep, ResilienceReport, SweepConfig, TrafficModel};
use std::path::{Path, PathBuf};

fn numeric_flag(args: &[String], name: &str, default: u64) -> u64 {
    match morello_pmu::flag_value(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid --{name} value `{raw}` (expected a number)");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn opt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |ms| format!("{ms:.2}"))
}

fn policy_table(report: &ResilienceReport) -> Table {
    let mut t = Table::new(&[
        "ABI",
        "storm ppm",
        "policy",
        "goodput rps",
        "slo att",
        "amp",
        "p99 ms",
        "err",
        "silent",
        "timeout",
        "shed",
        "brk rej",
        "recovery ms",
    ]);
    for a in &report.abis {
        for c in &a.cells {
            t.row(&[
                a.abi.to_string(),
                c.storm_ppm.to_string(),
                c.policy.clone(),
                fmt_metric(c.goodput_rps),
                format!("{:.3}", c.slo_attainment),
                format!("{:.3}", c.retry_amplification),
                format!("{:.3}", c.p99_ms),
                c.errors.to_string(),
                c.silent.to_string(),
                c.timeouts.to_string(),
                c.shed.to_string(),
                c.breaker_rejected.to_string(),
                opt_ms(c.recovery_ms),
            ]);
        }
    }
    t
}

fn breaker_table(report: &ResilienceReport) -> Table {
    let mut t = Table::new(&[
        "ABI",
        "storm ppm",
        "policy",
        "tenant",
        "weight",
        "retries",
        "shed",
        "brk opens",
        "closed at end",
        "p99 ms",
    ]);
    for a in &report.abis {
        // The hottest storm under the full tier is where the breaker
        // and shed stories live.
        let Some(c) = a
            .cells
            .iter()
            .filter(|c| c.policy == "full")
            .max_by_key(|c| c.storm_ppm)
        else {
            continue;
        };
        for ten in &c.tenants {
            t.row(&[
                a.abi.to_string(),
                c.storm_ppm.to_string(),
                c.policy.clone(),
                ten.tenant.clone(),
                ten.weight.to_string(),
                ten.retries.to_string(),
                ten.shed.to_string(),
                ten.breaker_opens.to_string(),
                ten.breaker_closed_at_end.to_string(),
                format!("{:.3}", ten.p99_ms),
            ]);
        }
    }
    t
}

fn main() {
    let cli = BenchCli::parse("fig12_resilience");
    let args: Vec<String> = std::env::args().collect();
    let cfg = SweepConfig {
        quick: cli.quick,
        jobs: cli.jobs,
        seed: numeric_flag(&args, "seed", SweepConfig::default().seed),
        fault_rate_ppm: numeric_flag(&args, "fault-ppm", 0),
        traffic: if flag_present("burst") {
            TrafficModel::OnOff {
                // 1 ms period, 25% duty cycle at the modelled 2.5 GHz.
                period_cycles: 2_500_000,
                on_share: 0.25,
            }
        } else {
            TrafficModel::Poisson
        },
        ..SweepConfig::default()
    };

    let started = std::time::Instant::now();
    let report = {
        let _sweep = morello_bench::trace_phase(
            &format!("resilience sweep seed {:#x}", cfg.seed),
            "resilience-sweep",
        );
        run_resilience_sweep(&cfg)
    };
    eprintln!(
        "(resilience sweep: {} ABIs x {} storms x {} policies x {} requests, jobs={}, {:.2?})",
        report.abis.len(),
        report.storm_ppm.len(),
        report.policies.len(),
        report.requests_per_cell,
        cli.jobs,
        started.elapsed()
    );

    human!("Figure 12: resilient serving under seeded chaos, by ABI and policy tier");
    human!(
        "{} arrivals at {} rps ({:.0}% of hybrid capacity), {} cores, {} tenants, \
         SLO {:.2} ms, seed {:#x}",
        report.traffic,
        fmt_metric(report.offered_rps),
        report.offered_utilization * 100.0,
        report.cores,
        report.tenants.len(),
        report.slo_ms,
        report.seed
    );
    human!("{}", policy_table(&report).render());
    human!("per-tenant view at the hottest storm under the full tier:");
    human!("{}", breaker_table(&report).render());

    let out =
        morello_pmu::out_flag(&args).unwrap_or_else(|| PathBuf::from("BENCH_resilience.json"));
    if out == Path::new("-") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                let boxed: Box<dyn std::error::Error> = Box::new(e);
                exit_with_error("could not serialise resilience report", boxed.as_ref());
            }
        }
        return;
    }
    match morello_pmu::write_json_out(&out, &report) {
        Ok(()) => eprintln!("(resilience report: {})", out.display()),
        Err(e) => {
            let boxed: Box<dyn std::error::Error> = Box::new(e);
            exit_with_error("could not write resilience report", boxed.as_ref());
        }
    }
}
