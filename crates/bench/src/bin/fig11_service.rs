//! Figure 11: Morello as a service — throughput-vs-load and
//! latency-vs-load per ABI, with per-tenant quarantine capacity.
//!
//! Serves the request shapes open-loop against a multi-tenant simulated
//! server (see `morello-serve`): every tenant owns a revoking heap
//! under its own quarantine policy, a deficit-round-robin scheduler
//! shares a fixed core pool, and offered load sweeps fixed fractions of
//! the *hybrid* ABI's capacity. Below saturation throughput tracks the
//! offered rate for every ABI; past it the curves plateau at each ABI's
//! own capacity and tail latency (p999) climbs — with purecap
//! saturating at a measurably lower offered load than hybrid, the
//! serving-facing restatement of the paper's throughput gap.
//!
//! Everything is simulated time: the sweep is byte-identical across
//! `--jobs` values for a fixed seed (CI diffs exactly that).
//!
//! Flags: `--quick` (fewer load points and requests), `--jobs N`
//! (sweep fan-out; never affects results), `--fault-ppm N` (background
//! tag-clear corruption rate, requests per million), `--burst` (on/off
//! bursty arrivals instead of Poisson), `--seed N`,
//! `--out <path>` (default `BENCH_service.json`; `-` = stdout),
//! `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{exit_with_error, flag_present, human, BenchCli};
use morello_pmu::{fmt_metric, Table};
use morello_serve::{run_service_sweep, ServiceReport, SweepConfig, TrafficModel};
use std::path::{Path, PathBuf};

fn numeric_flag(args: &[String], name: &str, default: u64) -> u64 {
    match morello_pmu::flag_value(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid --{name} value `{raw}` (expected a number)");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn capacity_table(report: &ServiceReport) -> Table {
    let mut t = Table::new(&[
        "ABI",
        "mean svc cycles",
        "capacity rps",
        "saturation rps",
        "vs hybrid",
    ]);
    let hybrid = report
        .abis
        .iter()
        .find(|a| a.abi.to_string() == "hybrid")
        .map_or(0.0, |a| a.capacity_rps);
    for a in &report.abis {
        t.row(&[
            a.abi.to_string(),
            fmt_metric(a.mean_service_cycles),
            fmt_metric(a.capacity_rps),
            fmt_metric(a.saturation_offered_rps),
            if hybrid > 0.0 {
                format!("{:.2}x", a.capacity_rps / hybrid)
            } else {
                "-".into()
            },
        ]);
    }
    t
}

fn load_table(report: &ServiceReport) -> Table {
    let mut t = Table::new(&[
        "ABI",
        "load",
        "offered rps",
        "tput rps",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "drop",
        "err",
        "silent",
    ]);
    for a in &report.abis {
        for p in &a.points {
            t.row(&[
                a.abi.to_string(),
                format!("{:.2}", p.offered_ratio),
                fmt_metric(p.offered_rps),
                fmt_metric(p.throughput_rps),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.3}", p.p999_ms),
                p.dropped.to_string(),
                p.errors.to_string(),
                p.silent.to_string(),
            ]);
        }
    }
    t
}

fn tenant_table(report: &ServiceReport) -> Table {
    let mut t = Table::new(&[
        "ABI",
        "tenant",
        "policy",
        "completed",
        "dropped",
        "p99 ms",
        "quarantine hwm",
        "epochs",
        "pressure",
    ]);
    for a in &report.abis {
        // The capacity row: the highest offered load of the sweep is
        // where quarantine pressure and fairness matter.
        let Some(p) = a.points.last() else { continue };
        for ten in &p.tenants {
            t.row(&[
                a.abi.to_string(),
                ten.tenant.clone(),
                ten.policy.clone(),
                ten.completed.to_string(),
                ten.dropped.to_string(),
                format!("{:.3}", ten.p99_ms),
                fmt_metric(ten.quarantine_bytes_hwm as f64),
                ten.revocation_epochs.to_string(),
                ten.heap_pressure.to_string(),
            ]);
        }
    }
    t
}

fn main() {
    let cli = BenchCli::parse("fig11_service");
    let args: Vec<String> = std::env::args().collect();
    let cfg = SweepConfig {
        quick: cli.quick,
        jobs: cli.jobs,
        seed: numeric_flag(&args, "seed", SweepConfig::default().seed),
        fault_rate_ppm: numeric_flag(&args, "fault-ppm", 0),
        traffic: if flag_present("burst") {
            TrafficModel::OnOff {
                // 1 ms period, 25% duty cycle at the modelled 2.5 GHz.
                period_cycles: 2_500_000,
                on_share: 0.25,
            }
        } else {
            TrafficModel::Poisson
        },
        ..SweepConfig::default()
    };

    let started = std::time::Instant::now();
    let report = {
        let _sweep = morello_bench::trace_phase(
            &format!("service sweep seed {:#x}", cfg.seed),
            "service-sweep",
        );
        run_service_sweep(&cfg)
    };
    eprintln!(
        "(service sweep: {} ABIs x {} load points x {} requests, {} tenants, jobs={}, {:.2?})",
        report.abis.len(),
        report.load_ratios.len(),
        report.requests_per_point,
        report.tenants.len(),
        cli.jobs,
        started.elapsed()
    );

    human!("Figure 11: Morello-as-a-service — capacity and tail latency by ABI");
    human!(
        "{} arrivals, {} cores, {} tenants, seed {:#x}, fault rate {} ppm",
        report.traffic,
        report.cores,
        report.tenants.len(),
        report.seed,
        report.fault_rate_ppm
    );
    human!("{}", capacity_table(&report).render());
    human!("{}", load_table(&report).render());
    human!("per-tenant capacity at the highest offered load:");
    human!("{}", tenant_table(&report).render());

    let out = morello_pmu::out_flag(&args).unwrap_or_else(|| PathBuf::from("BENCH_service.json"));
    if out == Path::new("-") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                let boxed: Box<dyn std::error::Error> = Box::new(e);
                exit_with_error("could not serialise service report", boxed.as_ref());
            }
        }
        return;
    }
    match morello_pmu::write_json_out(&out, &report) {
        Ok(()) => eprintln!("(service report: {})", out.display()),
        Err(e) => {
            let boxed: Box<dyn std::error::Error> = Box::new(e);
            exit_with_error("could not write service report", boxed.as_ref());
        }
    }
}
