//! Extension ablation: how much of the purecap overhead is *capacity*?
//!
//! The paper's discussion (§5) attributes most purecap cost to the larger
//! memory footprint of 128-bit capabilities pressing on fixed-size caches
//! and TLBs, and recommends that future memory-safe architectures budget
//! for it. This harness quantifies that: re-run the pointer-heavy
//! workloads with the L2/LLC and TLBs scaled 1x/2x/4x and report the
//! purecap slowdown at each point. It also reports the explicit
//! tag-table model (Morello's in-DRAM tag storage behind a tag cache) as
//! a separate column.
//!
//! `cargo run --release -p morello-bench --bin ablation_cachescale`
//!
//! Flags: `--out <path>` (JSON artefact; `-` = stdout), `--trace <path>`
//! (phase trace: Chrome JSON + JSONL).
//!
//! All four platform variants share one lowered-program cache — lowering
//! depends only on (workload, ABI, scale), so each workload lowers twice
//! (hybrid + purecap) for the whole ladder.

use cheri_isa::Abi;
use cheri_workloads::by_key;
use morello_bench::{harness_runner, human, write_json};
use morello_pmu::Table;
use morello_sim::{Platform, ProgramCache, RunError, Runner};
use morello_uarch::{CacheGeometry, UarchConfig};
use serde::Serialize;

const KEYS: [&str; 6] = [
    "omnetpp_520",
    "xalancbmk_523",
    "sqlite",
    "quickjs",
    "deepsjeng_531",
    "lbm_519",
];

fn scaled(cfg: UarchConfig, factor: u32) -> UarchConfig {
    UarchConfig {
        l2: CacheGeometry::new(cfg.l2.size * factor as u64, cfg.l2.ways, cfg.l2.line),
        llc: CacheGeometry::new(cfg.llc.size * factor as u64, cfg.llc.ways, cfg.llc.line),
        l1d_tlb_entries: cfg.l1d_tlb_entries * factor,
        l2_tlb_entries: cfg.l2_tlb_entries * factor,
        ..cfg
    }
}

fn slowdown(platform: Platform, key: &str, cache: &ProgramCache) -> Result<f64, RunError> {
    let runner = Runner::new(platform);
    let Some(w) = by_key(key) else {
        eprintln!("error: unknown workload `{key}`");
        std::process::exit(1);
    };
    let spans = morello_bench::span_sink();
    let h = runner.run_with_cache_spanned(&w, Abi::Hybrid, cache, spans)?;
    let p = runner.run_with_cache_spanned(&w, Abi::Purecap, cache, spans)?;
    Ok(p.seconds / h.seconds)
}

#[derive(Serialize)]
struct Row {
    name: String,
    base_1x: f64,
    caches_2x: f64,
    caches_4x: f64,
    with_tag_table: f64,
}

fn main() {
    let _trace = morello_bench::init_trace();
    let base = *harness_runner().platform();
    let cache = ProgramCache::new();
    let mut t = Table::new(&[
        "Benchmark",
        "purecap @1x caches",
        "@2x L2/LLC+TLB",
        "@4x L2/LLC+TLB",
        "@1x + explicit tag table",
    ]);
    let mut rows = Vec::new();
    let run = |platform, key| {
        slowdown(platform, key, &cache)
            .unwrap_or_else(|e| morello_bench::exit_with_error("cache-scale ablation failed", &e))
    };
    let _sweep = morello_bench::trace_phase("sweep cache-scale ladder", "sweep");
    for key in KEYS {
        let Some(w) = by_key(key) else {
            eprintln!("error: unknown workload `{key}`");
            std::process::exit(1);
        };
        let row = Row {
            name: w.name.to_owned(),
            base_1x: run(base, key),
            caches_2x: run(base.with_uarch(scaled(base.uarch, 2)), key),
            caches_4x: run(base.with_uarch(scaled(base.uarch, 4)), key),
            with_tag_table: run(base.with_uarch(base.uarch.with_tag_table_model(true)), key),
        };
        t.row(&[
            row.name.clone(),
            format!("{:.3}x", row.base_1x),
            format!("{:.3}x", row.caches_2x),
            format!("{:.3}x", row.caches_4x),
            format!("{:.3}x", row.with_tag_table),
        ]);
        rows.push(row);
    }
    human!("Capacity ablation: purecap slowdown vs cache/TLB scale");
    human!("{}", t.render());
    human!(
        "Reading: capacity scaling recovers the footprint-driven share of the\n\
         purecap overhead (the paper's §5 'future architectures' argument);\n\
         the explicit tag-table column shows the residual cost of in-DRAM\n\
         tag storage that the baseline folds into its DRAM latency."
    );
    write_json("ablation_cachescale", &rows);
}
