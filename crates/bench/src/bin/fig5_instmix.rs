//! Figure 5: distribution of speculative instruction classes per ABI —
//! the capability instruction-mix shift.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, suite_rows, write_json};

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    let table = experiments::fig5_instmix(&rows);
    human!("Figure 5: speculative instruction mix by ABI");
    human!("{}", table.render());
    let shift = experiments::fig5_shift_summary(&rows);
    human!(
        "DP_SPEC share growth under purecap: {:.2}pp .. {:.2}pp (paper: 5.21 .. 29.31)",
        shift.dp_growth_min,
        shift.dp_growth_max
    );
    human!(
        "LD/ST share stability (std of delta): {:.2}pp / {:.2}pp (paper: 2.01 / 1.47)",
        shift.ld_delta_std,
        shift.st_delta_std
    );
    write_json("fig5_instmix", &shift);
}
