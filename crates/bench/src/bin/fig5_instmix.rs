//! Figure 5: distribution of speculative instruction classes per ABI —
//! the capability instruction-mix shift.

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    let table = experiments::fig5_instmix(&rows);
    println!("Figure 5: speculative instruction mix by ABI");
    println!("{}", table.render());
    let shift = experiments::fig5_shift_summary(&rows);
    println!(
        "DP_SPEC share growth under purecap: {:.2}pp .. {:.2}pp (paper: 5.21 .. 29.31)",
        shift.dp_growth_min, shift.dp_growth_max
    );
    println!(
        "LD/ST share stability (std of delta): {:.2}pp / {:.2}pp (paper: 2.01 / 1.47)",
        shift.ld_delta_std, shift.st_delta_std
    );
    write_json("fig5_instmix", &shift);
}
