//! Cycle-attribution profile of a single workload run: region hotspot
//! table, collapsed-stack lines for flamegraph tooling, and (optionally)
//! a structured JSONL run journal.
//!
//! ```text
//! cargo run --release -p morello-bench --bin profile_run -- omnetpp_520 --abi purecap
//! ```
//!
//! Flags:
//! * `--abi <hybrid|benchmark|purecap>` — ABI to run (default purecap)
//! * `--journal <path>` — append a JSONL run record (one line per run)
//! * `--out <path>` — write the full profile as JSON (`-` = stdout)
//! * `--trace <path>` — phase trace (Chrome JSON + JSONL)
//!
//! `MORELLO_SCALE` selects the problem size as in every other binary.

use cheri_isa::Abi;
use cheri_workloads::by_key;
use morello_bench::{harness_runner, human, write_json};
use morello_obs::{collapsed_stacks, hotspot_table, run_profiled, JsonlJournal};

fn parse_abi(s: &str) -> Abi {
    match s {
        "hybrid" => Abi::Hybrid,
        "benchmark" => Abi::Benchmark,
        "purecap" => Abi::Purecap,
        other => {
            eprintln!("unknown ABI `{other}` (expected hybrid, benchmark, or purecap)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let _trace = morello_bench::init_trace();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut key: Option<String> = None;
    let mut abi = Abi::Purecap;
    let mut journal: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--abi" => abi = parse_abi(it.next().map(String::as_str).unwrap_or("")),
            "--journal" => journal = it.next().cloned(),
            "--trace" => {
                it.next(); // consumed by init_trace
            }
            "--out" => {
                it.next(); // consumed by write_json
            }
            flag if flag.starts_with("--") => {
                if !flag.starts_with("--out=") && !flag.starts_with("--trace=") {
                    eprintln!("unknown flag `{flag}`");
                    std::process::exit(2);
                }
            }
            positional => key = Some(positional.to_owned()),
        }
    }
    let key = key.unwrap_or_else(|| "omnetpp_520".to_owned());
    let Some(workload) = by_key(&key) else {
        eprintln!("unknown workload key `{key}`");
        std::process::exit(2);
    };

    let runner = harness_runner();
    let platform = *runner.platform();
    let run = {
        let _profile = morello_bench::trace_phase(&format!("profile {key} {abi}"), "run");
        match run_profiled(&platform, &workload, abi) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("profile failed: {e}");
                std::process::exit(1);
            }
        }
    };

    human!("Region profile: {} under the {abi} ABI", run.workload);
    human!("{}", hotspot_table(&run.regions).render());
    human!("Collapsed stacks (flamegraph input):");
    human!(
        "{}",
        collapsed_stacks(&run.workload, &run.regions).trim_end()
    );

    if let Some(path) = journal {
        match JsonlJournal::append(&path) {
            Ok(mut j) => match runner.run_observed(&workload, abi, &mut j) {
                Ok(_) => eprintln!("(journal record appended: {path})"),
                Err(e) => eprintln!("warning: journalled run failed: {e}"),
            },
            Err(e) => eprintln!("warning: could not open journal {path}: {e}"),
        }
    }

    write_json(&format!("profile_{key}_{abi}"), &run);
}
