//! Figure 10: per-opcode-class attribution — where the retired
//! instructions and model cycles of each ABI go, across eight classes
//! (int-alu, cap-manip, scalar/capability load-store, plain and
//! PCC-changing branches, allocator runtime, region metadata). The
//! counts partition `INST_RETIRED` and `CPU_CYCLES` exactly.
//!
//! `MORELLO_SCALE=small cargo run --release -p morello-bench --bin fig10_opcode_classes`
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, suite_rows, write_json};

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    let (table, data) = experiments::fig10_opcode_classes(&rows);
    human!("Figure 10: opcode-class attribution (retired and cycle shares per ABI)");
    human!("{}", table.render());
    write_json("fig10_opcode_classes", &data);
}
