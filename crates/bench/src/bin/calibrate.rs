//! Calibration overview: the load-bearing shape numbers for every
//! workload, side by side with the paper's values where available.
//!
//! Usage: `MORELLO_SCALE=small cargo run --release -p morello-bench --bin calibrate`
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--trace <path>` (phase trace:
//! Chrome JSON + JSONL).

use cheri_isa::Abi;
use cheri_workloads::registry;
use morello_bench::{harness_runner, human, suite_rows};
use morello_pmu::Table;

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);

    let reg = registry();
    let mut t = Table::new(&[
        "Benchmark",
        "retired(M)",
        "IPC(hyb)",
        "MI",
        "MI paper",
        "bm norm",
        "pc norm",
        "pc paper",
        "inst x",
        "capld%",
        "capst%",
        "brMR%",
        "L1D%",
        "L2%",
    ]);
    for r in &rows {
        let (Some(h), Some(w)) = (r.get(Abi::Hybrid), reg.iter().find(|w| w.key == r.key)) else {
            continue;
        };
        let pc = r.get(Abi::Purecap);
        t.row(&[
            r.name.clone(),
            format!("{:.1}", h.retired as f64 / 1e6),
            format!("{:.2}", h.derived.ipc),
            format!("{:.2}", h.derived.memory_intensity),
            w.table2_mi.map_or("-".into(), |v| format!("{v:.2}")),
            r.normalized_time(Abi::Benchmark)
                .map_or("NA".into(), |v| format!("{v:.2}")),
            r.normalized_time(Abi::Purecap)
                .map_or("NA".into(), |v| format!("{v:.2}")),
            w.paper_purecap_slowdown
                .map_or("-".into(), |v| format!("{v:.2}")),
            pc.map_or("NA".into(), |p| {
                format!("{:.2}", p.retired as f64 / h.retired as f64)
            }),
            pc.map_or("NA".into(), |p| {
                format!("{:.1}", p.derived.cap_load_density * 100.0)
            }),
            pc.map_or("NA".into(), |p| {
                format!("{:.1}", p.derived.cap_store_density * 100.0)
            }),
            format!("{:.2}", h.derived.branch_mispredict_rate * 100.0),
            format!("{:.2}", h.derived.l1d_miss_rate * 100.0),
            format!("{:.2}", h.derived.l2_miss_rate * 100.0),
        ]);
    }
    human!("{}", t.render());
}
