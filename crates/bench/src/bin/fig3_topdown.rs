//! Figure 3 / Table 4: top-down pipeline breakdown for the six selected
//! workloads, three ABIs per cell.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use morello_bench::{experiments, harness_runner, suite_rows, write_json};
use morello_sim::suite::TABLE4_KEYS;

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, Some(&TABLE4_KEYS));
    let table = experiments::fig3_table4_topdown(&rows);
    println!("Figure 3 / Table 4: top-down breakdown (hybrid, benchmark, purecap)");
    println!("{}", table.render());
    write_json("fig3_table4_topdown", &rows);
}
