//! Figure 3 / Table 4: top-down pipeline breakdown for the six selected
//! workloads, three ABIs per cell.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, suite_rows, write_json};
use morello_sim::suite::TABLE4_KEYS;

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, Some(&TABLE4_KEYS));
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    let table = experiments::fig3_table4_topdown(&rows);
    human!("Figure 3 / Table 4: top-down breakdown (hybrid, benchmark, purecap)");
    human!("{}", table.render());
    write_json("fig3_table4_topdown", &rows);
}
