//! Figure 3 / Table 4: top-down pipeline breakdown for the six selected
//! workloads, three ABIs per cell.

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::{run_suite, select, TABLE4_KEYS};

fn main() {
    let runner = harness_runner();
    let rows = run_suite(&runner, &select(&TABLE4_KEYS)).expect("suite runs");
    let table = experiments::fig3_table4_topdown(&rows);
    println!("Figure 3 / Table 4: top-down breakdown (hybrid, benchmark, purecap)");
    println!("{}", table.render());
    write_json("fig3_table4_topdown", &rows);
}
