//! Figure 2: binary-section sizes under the three ABIs, normalised to
//! hybrid (median across workloads).
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use morello_bench::{experiments, harness_runner, suite_rows, write_json};

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let (table, data) = experiments::fig2_binsize(&rows);
    println!("Figure 2: program-section sizes (median ratio to hybrid)");
    println!("{}", table.render());
    write_json("fig2_binsize", &data);
}
