//! Figure 2: binary-section sizes under the three ABIs, normalised to
//! hybrid (median across workloads).

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    let (table, data) = experiments::fig2_binsize(&rows);
    println!("Figure 2: program-section sizes (median ratio to hybrid)");
    println!("{}", table.render());
    write_json("fig2_binsize", &data);
}
