//! Figure 4: percentage of cycles bound on the core vs the memory
//! hierarchy, per workload and ABI.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use morello_bench::{experiments, harness_runner, suite_rows, write_json};

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let table = experiments::fig4_bounds(&rows);
    println!("Figure 4: core-bound vs memory-bound cycles");
    println!("{}", table.render());
    write_json("fig4_bounds", &rows);
}
