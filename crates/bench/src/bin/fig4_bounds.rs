//! Figure 4: percentage of cycles bound on the core vs the memory
//! hierarchy, per workload and ABI.

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    let table = experiments::fig4_bounds(&rows);
    println!("Figure 4: core-bound vs memory-bound cycles");
    println!("{}", table.render());
    write_json("fig4_bounds", &rows);
}
