//! Workload characterisation without the timing model: instruction mix,
//! memory intensity, working set, pointer density and access pattern —
//! the §3.3 axes — per ABI for one workload.
//!
//! `cargo run --release -p morello-bench --bin trace_summary -- omnetpp_520`
//!
//! Flags: `--out <path>` (JSON artefact; `-` = stdout), `--trace <path>`
//! (phase trace: Chrome JSON + JSONL).

use cheri_isa::{lower, Abi, Interp, InterpConfig, TraceSummary};
use cheri_workloads::by_key;
use morello_bench::{human, scale_from_env, write_json};
use morello_pmu::Table;

fn main() {
    let _trace = morello_bench::init_trace();
    let key = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "omnetpp_520".into());
    let Some(w) = by_key(&key) else {
        eprintln!("unknown workload `{key}`");
        std::process::exit(1);
    };
    let scale = scale_from_env();
    let mut t = Table::new(&["quantity", "hybrid", "benchmark", "purecap"]);
    let mut summaries = Vec::new();
    for abi in Abi::ALL {
        if !w.supports(abi) {
            summaries.push(None);
            continue;
        }
        let _span = morello_bench::trace_phase(&format!("trace {key} {abi}"), "run");
        let prog = lower(&w.build(abi, scale));
        let mut s = TraceSummary::new();
        if let Err(e) = Interp::new(InterpConfig::default()).run(&prog, &mut s) {
            morello_bench::exit_with_error(&format!("trace of {key} ({abi}) failed"), &e);
        }
        s.finish();
        summaries.push(Some(s));
    }
    let cell = |f: &dyn Fn(&TraceSummary) -> String| -> Vec<String> {
        summaries
            .iter()
            .map(|s| s.as_ref().map_or("NA".into(), f))
            .collect()
    };
    type RowFn = Box<dyn Fn(&TraceSummary) -> String>;
    let rows: Vec<(&str, RowFn)> = vec![
        ("retired", Box::new(|s| s.retired.to_string())),
        (
            "memory intensity",
            Box::new(|s| format!("{:.3}", s.memory_intensity())),
        ),
        (
            "cap traffic share",
            Box::new(|s| format!("{:.1}%", s.cap_traffic_share() * 100.0)),
        ),
        (
            "chase fraction",
            Box::new(|s| format!("{:.1}%", s.chase_fraction() * 100.0)),
        ),
        (
            "working set",
            Box::new(|s| format!("{} KiB", s.working_set_bytes() / 1024)),
        ),
        ("data pages", Box::new(|s| s.data_pages.to_string())),
        (
            "code lines",
            Box::new(|s| s.code_footprint_lines.to_string()),
        ),
        (
            "indirect branches",
            Box::new(|s| s.indirect_branches.to_string()),
        ),
        ("PCC changes", Box::new(|s| s.pcc_changes.to_string())),
        ("cap-manip insts", Box::new(|s| s.cap_manip.to_string())),
        (
            "access pattern",
            Box::new(|s| s.access_pattern().to_string()),
        ),
    ];
    for (name, f) in &rows {
        let c = cell(f);
        t.row(&[name.to_string(), c[0].clone(), c[1].clone(), c[2].clone()]);
    }
    human!("Trace characterisation: {}", w.name);
    human!("{}", t.render());
    write_json(&format!("trace_summary_{key}"), &summaries);
}
