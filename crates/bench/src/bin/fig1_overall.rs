//! Figure 1: overall execution performance of every workload under the
//! three ABIs, normalised to hybrid.
//!
//! `MORELLO_SCALE=small cargo run --release -p morello-bench --bin fig1_overall`
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, suite_rows, BenchCli};

fn main() {
    let cli = BenchCli::parse("fig1_overall");
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    let (table, data) = experiments::fig1_overall(&rows);
    human!("Figure 1: execution time normalised to the hybrid ABI");
    human!("{}", table.render());
    cli.write_json(&data);
}
