//! Figure 1: overall execution performance of every workload under the
//! three ABIs, normalised to hybrid.
//!
//! `MORELLO_SCALE=small cargo run --release -p morello-bench --bin fig1_overall`

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    let (table, data) = experiments::fig1_overall(&rows);
    println!("Figure 1: execution time normalised to the hybrid ABI");
    println!("{}", table.render());
    write_json("fig1_overall", &data);
}
