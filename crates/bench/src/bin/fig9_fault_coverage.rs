//! Figure 9: fault-detection coverage vs injection rate — the
//! robustness lab's headline table.
//!
//! Sweeps seeded tag-clear injection campaigns (rate × ABI × workload)
//! through the fault runner and classifies every run against its clean
//! reference. The capability ABIs trap the corruption at its next use
//! (detection coverage ≈ 100 %); the hybrid ABI, fed the *identical*
//! plan, never traps — the corruption either flows into the output as
//! a silent wrong answer or crashes the run far from its origin.
//!
//! The campaign is deterministic end to end: plan seeds derive from the
//! campaign seed and the cell coordinates, never from scheduling, so
//! `--jobs 1` and `--jobs 4` produce byte-identical stdout and JSON
//! (CI diffs exactly that).
//!
//! Flags: `--jobs N` (cell fan-out; default available parallelism or
//! `MORELLO_JOBS`), `--out <path>` (JSON artefact; `-` = stdout),
//! `--trace <path>` (phase trace: Chrome JSON + JSONL).

use cheri_workloads::Scale;
use morello_bench::{exit_with_error, human, BenchCli};
use morello_fault::{coverage_table, run_coverage, CampaignConfig, RecoveryPolicy};
use morello_sim::suite::select;
use morello_sim::Platform;

/// Pointer-dense workloads where a wild capability has consequences.
const KEYS: [&str; 3] = ["omnetpp_520", "xz_557", "sqlite"];

fn main() {
    let cli = BenchCli::parse("fig9_fault_coverage");
    let platform = Platform::morello().with_scale(cli.scale);
    let workloads = select(&KEYS);
    let config = CampaignConfig {
        seed: 0x5EED_FA17,
        rates_per_million: vec![50, 200, 800],
        // Test scale keeps the CI determinism diff quick; the larger
        // scales buy tighter rate estimates.
        trials: if cli.scale == Scale::Test { 2 } else { 3 },
        policy: RecoveryPolicy::SkipFaultingOp,
        jobs: cli.jobs,
    };
    let started = std::time::Instant::now();
    let report = {
        let _campaign = morello_bench::trace_phase(
            &format!("fault-campaign seed {:#x}", config.seed),
            "fault-campaign",
        );
        run_coverage(&platform, &workloads, &config)
            .unwrap_or_else(|e| exit_with_error("fault-coverage campaign failed", &e))
    };
    eprintln!(
        "(campaign: {} workloads x {} rates x {} trials x 3 ABIs, jobs={}, {:.2?})",
        workloads.len(),
        config.rates_per_million.len(),
        config.trials,
        config.jobs,
        started.elapsed()
    );
    human!("Figure 9: fault-detection coverage by ABI (seeded tag-clear campaigns)");
    human!(
        "policy: skip-faulting-op; seed {:#x}; rates in faults per million clean instructions",
        report.config.seed
    );
    human!("{}", coverage_table(&report.cells).render());
    let trapped: u64 = report.cells.iter().map(|c| u64::from(c.trapped_runs)).sum();
    let silent: u64 = report.cells.iter().map(|c| u64::from(c.silent_runs)).sum();
    human!("total trapped runs: {trapped}; total silent corruptions: {silent}");
    cli.write_json(&report);
}
