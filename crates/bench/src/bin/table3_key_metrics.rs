//! Table 3: aggregated key performance metrics for the twelve
//! representative workloads, three ABIs each.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, suite_rows, write_json};
use morello_sim::suite::TABLE3_KEYS;

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, Some(&TABLE3_KEYS));
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    let table = experiments::table3_key_metrics(&rows);
    human!("Table 3: aggregated key performance metrics");
    human!("{}", table.render());
    write_json("table3_key_metrics", &rows);
}
