//! Table 3: aggregated key performance metrics for the twelve
//! representative workloads, three ABIs each.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use morello_bench::{experiments, harness_runner, suite_rows, write_json};
use morello_sim::suite::TABLE3_KEYS;

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, Some(&TABLE3_KEYS));
    let table = experiments::table3_key_metrics(&rows);
    println!("Table 3: aggregated key performance metrics");
    println!("{}", table.render());
    write_json("table3_key_metrics", &rows);
}
