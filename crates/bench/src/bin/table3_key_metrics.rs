//! Table 3: aggregated key performance metrics for the twelve
//! representative workloads, three ABIs each.

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::{run_suite, select, TABLE3_KEYS};

fn main() {
    let runner = harness_runner();
    let rows = run_suite(&runner, &select(&TABLE3_KEYS)).expect("suite runs");
    let table = experiments::table3_key_metrics(&rows);
    println!("Table 3: aggregated key performance metrics");
    println!("{}", table.render());
    write_json("table3_key_metrics", &rows);
}
