//! Figure 7: Pearson correlation matrix of derived metrics across the
//! workload population, hybrid vs purecap.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use cheri_isa::Abi;
use morello_bench::{experiments, harness_runner, suite_rows, write_json};

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    for abi in [Abi::Hybrid, Abi::Purecap] {
        let (table, matrix) = experiments::fig7_correlation(&rows, abi);
        println!("Figure 7 ({abi}): metric correlation matrix");
        println!("{}", table.render());
        write_json(&format!("fig7_correlation_{abi}"), &matrix);
    }
}
