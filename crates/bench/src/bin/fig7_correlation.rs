//! Figure 7: Pearson correlation matrix of derived metrics across the
//! workload population, hybrid vs purecap.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use cheri_isa::Abi;
use morello_bench::{experiments, harness_runner, human, suite_rows, write_json};

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    for abi in [Abi::Hybrid, Abi::Purecap] {
        let (table, matrix) = experiments::fig7_correlation(&rows, abi);
        human!("Figure 7 ({abi}): metric correlation matrix");
        human!("{}", table.render());
        write_json(&format!("fig7_correlation_{abi}"), &matrix);
    }
}
