//! Figure 7: Pearson correlation matrix of derived metrics across the
//! workload population, hybrid vs purecap.

use cheri_isa::Abi;
use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    for abi in [Abi::Hybrid, Abi::Purecap] {
        let (table, matrix) = experiments::fig7_correlation(&rows, abi);
        println!("Figure 7 ({abi}): metric correlation matrix");
        println!("{}", table.render());
        write_json(&format!("fig7_correlation_{abi}"), &matrix);
    }
}
