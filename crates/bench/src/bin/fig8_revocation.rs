//! Figure 8: heap temporal-safety revocation overhead vs quarantine
//! threshold — the allocator-strategy lab's headline curve.
//!
//! Runs the `alloc_stress` churn workload under all three ABIs, once
//! with the padded baseline allocator (quarantines, never sweeps) and
//! once per quarantine-byte threshold with the sweeping strategy. The
//! capability ABIs pay a load-side tag sweep whose frequency falls as
//! the quarantine grows (Cornucopia-style amortisation); the hybrid ABI
//! runs the classic allocator and pays nothing.
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, BenchCli};
use morello_obs::JsonlJournal;
use morello_sim::suite::{run_suite_traced, select, SuiteConfig, SuiteRow};
use morello_sim::{ProgramCache, Runner, StrategyKind};

/// The quarantine-byte threshold ladder, in KiB.
const THRESHOLDS_KIB: [u64; 4] = [16, 32, 64, 256];

fn main() {
    let cli = BenchCli::parse("fig8_revocation");
    let base = harness_runner();
    let workloads = select(&["alloc_stress"]);
    let cache = ProgramCache::new();
    let config = SuiteConfig::with_jobs(cli.jobs);
    let mut journal = cli.open_journal();

    let started = std::time::Instant::now();
    let mut sets: Vec<(u64, Vec<SuiteRow>)> = Vec::new();
    let mut run_at = |runner: &Runner, kib: u64, journal: &mut Option<JsonlJournal>| {
        let _ladder = morello_bench::trace_phase(&format!("ladder {kib} KiB"), "sweep");
        let observer = journal
            .as_mut()
            .map(|j| j as &mut dyn morello_sim::RunObserver);
        let rows = run_suite_traced(
            runner,
            &workloads,
            &cache,
            &config,
            observer,
            morello_bench::span_sink(),
        )
        .unwrap_or_else(|e| morello_bench::exit_with_error("revocation ladder failed", &e));
        sets.push((kib, rows));
    };
    run_at(&base, 0, &mut journal);
    for kib in THRESHOLDS_KIB {
        let runner = Runner::new(
            base.platform()
                .with_cap_alloc(StrategyKind::swept_bytes(kib * 1024)),
        );
        run_at(&runner, kib, &mut journal);
    }
    eprintln!(
        "(ladder: {} strategies, jobs={}, lowered {} cells ({} cache hits), {:.2?})",
        sets.len(),
        config.effective_jobs(),
        cache.misses(),
        cache.hits(),
        started.elapsed()
    );

    let _report = morello_bench::trace_phase("report fig8_revocation", "report");
    let (table, points) = experiments::fig8_revocation(&sets);
    human!("Figure 8: revocation overhead vs quarantine threshold (alloc_stress)");
    human!("{}", table.render());
    cli.write_json(&points);
}
