//! Table 2: memory-intensity classification of every workload (measured
//! vs the paper's values).

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    let table = experiments::table2_memory_intensity(&rows);
    println!("Table 2: benchmark memory-intensity values");
    println!("{}", table.render());
    write_json("table2_memory_intensity", &rows);
}
