//! Table 2: memory-intensity classification of every workload (measured
//! vs the paper's values).
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use morello_bench::{experiments, harness_runner, suite_rows, write_json};

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let table = experiments::table2_memory_intensity(&rows);
    println!("Table 2: benchmark memory-intensity values");
    println!("{}", table.render());
    write_json("table2_memory_intensity", &rows);
}
