//! Figure 6: memory-bound analysis — which level of the hierarchy the
//! backend-memory stalls come from (cache vs DRAM).

use morello_bench::{experiments, harness_runner, write_json};
use morello_sim::suite::run_full_suite;

fn main() {
    let runner = harness_runner();
    let rows = run_full_suite(&runner).expect("suite runs");
    let table = experiments::fig6_membound(&rows);
    println!("Figure 6: memory-bound split (share of memory-bound cycles)");
    println!("{}", table.render());
    write_json("fig6_membound", &rows);
}
