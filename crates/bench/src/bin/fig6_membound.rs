//! Figure 6: memory-bound analysis — which level of the hierarchy the
//! backend-memory stalls come from (cache vs DRAM).
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact).

use morello_bench::{experiments, harness_runner, suite_rows, write_json};

fn main() {
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let table = experiments::fig6_membound(&rows);
    println!("Figure 6: memory-bound split (share of memory-bound cycles)");
    println!("{}", table.render());
    write_json("fig6_membound", &rows);
}
