//! Figure 6: memory-bound analysis — which level of the hierarchy the
//! backend-memory stalls come from (cache vs DRAM).
//!
//! Suite flags: `--jobs N` (engine worker threads; default: available
//! parallelism, or `MORELLO_JOBS`), `--journal <path>` (append per-cell
//! JSONL run records incl. wall-time), `--out <path>` (JSON artefact;
//! `-` = stdout), `--trace <path>` (phase trace: Chrome JSON + JSONL).

use morello_bench::{experiments, harness_runner, human, suite_rows, write_json};

fn main() {
    let _trace = morello_bench::init_trace();
    let runner = harness_runner();
    let rows = suite_rows(&runner, None);
    let _report = morello_bench::trace_phase(concat!("report ", env!("CARGO_BIN_NAME")), "report");
    let table = experiments::fig6_membound(&rows);
    human!("Figure 6: memory-bound split (share of memory-bound cycles)");
    human!("{}", table.render());
    write_json("fig6_membound", &rows);
}
