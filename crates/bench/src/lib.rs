//! # morello-bench
//!
//! The experiment harness: one function per table/figure of the paper,
//! shared by the `fig*`/`table*` binaries and the criterion benches.
//!
//! Every generator takes the already-computed suite results so the
//! expensive simulation runs exactly once per binary; binaries print the
//! paper-style text table and drop a machine-readable JSON file next to
//! it (like the paper's published artefact data).

#![forbid(unsafe_code)]

pub mod experiments;

use cheri_workloads::Scale;
use morello_sim::{Platform, Runner};

/// Reads the harness scale from `MORELLO_SCALE` (`test`, `small`, or
/// `default`). Binaries default to the full (`default`) size; set
/// `MORELLO_SCALE=small` for a quick look.
pub fn scale_from_env() -> Scale {
    match std::env::var("MORELLO_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("small") => Scale::Small,
        _ => Scale::Default,
    }
}

/// The standard harness runner at the environment-selected scale.
pub fn harness_runner() -> Runner {
    Runner::new(Platform::morello().with_scale(scale_from_env()))
}

/// Writes an experiment's JSON artefact. Every figure/table binary
/// shares a `--out <path>` flag: when present on the command line the
/// artefact goes to that exact path (a binary that emits several
/// artefacts overwrites, last one wins); otherwise it lands under
/// `target/experiments/<name>.json`.
pub fn write_json(name: &str, value: &impl serde::Serialize) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = morello_pmu::out_flag(&args) {
        match morello_pmu::write_json_out(&path, value) {
            Ok(()) => eprintln!("(json artefact: {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        return;
    }
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(json artefact: {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}
