//! # morello-bench
//!
//! The experiment harness: one function per table/figure of the paper,
//! shared by the `fig*`/`table*` binaries and the criterion benches.
//!
//! Every generator takes the already-computed suite results so the
//! expensive simulation runs exactly once per binary; binaries print the
//! paper-style text table and drop a machine-readable JSON file next to
//! it (like the paper's published artefact data).

#![forbid(unsafe_code)]

pub mod cli;
pub mod experiments;
pub mod speed;

pub use cli::{flag_present, BenchCli};

use cheri_workloads::{registry, Scale};
use morello_obs::{JsonlJournal, Tracer};
use morello_sim::suite::{run_suite_traced, select, SuiteConfig, SuiteRow};
use morello_sim::{NullSpanSink, Platform, ProgramCache, Runner, SpanGuard, SpanSink};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Reads the harness scale from `MORELLO_SCALE` (`test`, `small`, or
/// `default`). Binaries default to the full (`default`) size; set
/// `MORELLO_SCALE=small` for a quick look.
pub fn scale_from_env() -> Scale {
    match std::env::var("MORELLO_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("small") => Scale::Small,
        _ => Scale::Default,
    }
}

/// The standard harness runner at the environment-selected scale.
pub fn harness_runner() -> Runner {
    Runner::new(Platform::morello().with_scale(scale_from_env()))
}

/// The suite worker count for this invocation: `--jobs N` on the command
/// line, else the `MORELLO_JOBS` environment variable, else the host's
/// available parallelism. An unparsable value aborts with exit code 2
/// rather than silently running at a default.
pub fn jobs_from_env() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match morello_pmu::jobs_flag(&args) {
        Some(Ok(n)) => return n,
        Some(Err(raw)) => {
            eprintln!("invalid --jobs value `{raw}` (expected a number)");
            std::process::exit(2);
        }
        None => {}
    }
    match std::env::var("MORELLO_JOBS") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid MORELLO_JOBS value `{raw}` (expected a number)");
                std::process::exit(2);
            }
        },
        Err(_) => morello_sim::suite::default_jobs(),
    }
}

static TRACE: OnceLock<Option<(Tracer, PathBuf)>> = OnceLock::new();
static NULL_SINK: NullSpanSink = NullSpanSink;

fn trace_state() -> &'static Option<(Tracer, PathBuf)> {
    TRACE.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        morello_pmu::trace_flag(&args).map(|path| (Tracer::new(), path))
    })
}

/// The process-wide span sink: the recording [`Tracer`] when `--trace
/// <path>` is on the command line, the inert [`NullSpanSink`] otherwise.
pub fn span_sink() -> &'static dyn SpanSink {
    match trace_state() {
        Some((tracer, _)) => tracer,
        None => &NULL_SINK,
    }
}

/// Flushes the recorded trace when dropped — hold one for the duration
/// of `main` (see [`init_trace`]).
pub struct TraceGuard(());

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some((tracer, path)) = trace_state() {
            match tracer.save(path) {
                Ok(jsonl) => eprintln!(
                    "(trace: {} [chrome://tracing] + {} [jsonl])",
                    path.display(),
                    jsonl.display()
                ),
                Err(e) => eprintln!("warning: could not write trace {}: {e}", path.display()),
            }
        }
    }
}

/// Arms `--trace <path>` support: every experiment binary calls this at
/// the top of `main` and keeps the guard alive. When the flag is
/// present, phase spans recorded anywhere in the process (the suite
/// engine's `sweep`/`lower`/`run` spans, [`trace_phase`] marks) are
/// written on exit as Chrome `trace_event` JSON at `<path>` plus JSONL
/// alongside; without the flag this is free.
pub fn init_trace() -> TraceGuard {
    let _ = trace_state();
    TraceGuard(())
}

/// Opens a named phase span (`"fault-campaign"`, `"report"`, …) on the
/// process-wide sink; the span ends when the guard drops.
pub fn trace_phase(name: &str, cat: &str) -> SpanGuard<'static> {
    morello_sim::span(span_sink(), name, cat)
}

/// True when `--out -` routes the JSON artefact to stdout — in which
/// case every human-readable line must go to stderr (see [`human!`]).
pub fn out_is_stdout() -> bool {
    static STDOUT_OUT: OnceLock<bool> = OnceLock::new();
    *STDOUT_OUT.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        morello_pmu::out_flag(&args).is_some_and(|p| p == std::path::Path::new("-"))
    })
}

/// Prints a human-readable progress/table line: to stdout normally, to
/// stderr when `--out -` has claimed stdout for the JSON artefact — so
/// `fig1_overall --out - | jq .` always parses.
#[macro_export]
macro_rules! human {
    ($($arg:tt)*) => {
        if $crate::out_is_stdout() {
            eprintln!($($arg)*);
        } else {
            println!($($arg)*);
        }
    };
}

/// The figure/table binaries' shared failure path: prints `context`,
/// the error, and its full [`std::error::Error::source`] chain to
/// stderr, then exits with status 1 — a formatted diagnosis instead of
/// a panic backtrace.
pub fn exit_with_error(context: &str, e: &dyn std::error::Error) -> ! {
    eprintln!("error: {context}: {e}");
    let mut source = e.source();
    while let Some(s) = source {
        eprintln!("  caused by: {s}");
        source = s.source();
    }
    std::process::exit(1);
}

/// Runs a suite the way every figure/table binary does: workloads are
/// the full registry (`keys: None`) or a key selection, cells are
/// scheduled over the parallel suite engine (`--jobs N` /
/// `MORELLO_JOBS`, default available parallelism) with a shared
/// lowered-program cache, and — when `--journal <path>` is on the
/// command line — one [`morello_sim::RunRecord`] per cell (with its
/// host wall-time) is appended to the JSONL run journal at that path.
///
/// A one-line engine summary (cells, jobs, cache hit rate, wall-time)
/// goes to stderr so the tables on stdout stay machine-diffable.
pub fn suite_rows(runner: &Runner, keys: Option<&[&str]>) -> Vec<SuiteRow> {
    let workloads = match keys {
        Some(keys) => select(keys),
        None => registry(),
    };
    let cache = ProgramCache::new();
    let config = SuiteConfig::with_jobs(jobs_from_env());
    let args: Vec<String> = std::env::args().collect();
    let started = std::time::Instant::now();
    let rows = match morello_pmu::journal_flag(&args) {
        Some(path) => {
            let mut journal = JsonlJournal::append(&path).unwrap_or_else(|e| {
                eprintln!("could not open journal {}: {e}", path.display());
                std::process::exit(1);
            });
            let rows = run_suite_traced(
                runner,
                &workloads,
                &cache,
                &config,
                Some(&mut journal),
                span_sink(),
            )
            .unwrap_or_else(|e| exit_with_error("suite run failed", &e));
            eprintln!("(run journal: {})", path.display());
            rows
        }
        None => run_suite_traced(runner, &workloads, &cache, &config, None, span_sink())
            .unwrap_or_else(|e| exit_with_error("suite run failed", &e)),
    };
    eprintln!(
        "(suite: {} workloads, jobs={}, lowered {} cells ({} cache hits), {:.2?})",
        workloads.len(),
        config.effective_jobs(),
        cache.misses(),
        cache.hits(),
        started.elapsed()
    );
    rows
}

/// Writes an experiment's JSON artefact. Every figure/table binary
/// shares a `--out <path>` flag: when present on the command line the
/// artefact goes to that exact path (a binary that emits several
/// artefacts overwrites, last one wins), with `--out -` streaming it to
/// stdout for piping; otherwise it lands under
/// `target/experiments/<name>.json`.
pub fn write_json(name: &str, value: &impl serde::Serialize) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = morello_pmu::out_flag(&args) {
        if path == std::path::Path::new("-") {
            match serde_json::to_string_pretty(value) {
                Ok(s) => println!("{s}"),
                Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
            }
            return;
        }
        match morello_pmu::write_json_out(&path, value) {
            Ok(()) => eprintln!("(json artefact: {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        return;
    }
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(json artefact: {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}
