//! Generators for every table and figure of the paper's evaluation.

use cheri_isa::Abi;
use cheri_workloads::by_key;
use morello_pmu::{correlation_matrix, fmt_metric, PmuEvent, Table};
use morello_sim::suite::SuiteRow;
use serde::Serialize;

fn pct(v: f64) -> String {
    fmt_metric(v * 100.0)
}

/// Figure 1: overall execution performance normalised to hybrid.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Row {
    /// Workload name.
    pub name: String,
    /// Hybrid execution time in (simulated) seconds.
    pub hybrid_seconds: f64,
    /// benchmark-ABI time normalised to hybrid (`None` = NA).
    pub benchmark_norm: Option<f64>,
    /// purecap time normalised to hybrid.
    pub purecap_norm: Option<f64>,
}

/// Builds Figure 1 from suite results.
pub fn fig1_overall(rows: &[SuiteRow]) -> (Table, Vec<Fig1Row>) {
    let mut t = Table::new(&[
        "Benchmark",
        "hybrid (s)",
        "benchmark (norm)",
        "purecap (norm)",
    ]);
    let mut data = Vec::new();
    for r in rows {
        // Hybrid underpins every normalisation; a row without it (a
        // quarantined cell from a degraded suite) cannot be plotted.
        let Some(h) = r.get(Abi::Hybrid) else {
            continue;
        };
        let bm = r.normalized_time(Abi::Benchmark);
        let pc = r.normalized_time(Abi::Purecap);
        t.row(&[
            r.name.clone(),
            format!("{:.3}", h.seconds),
            bm.map_or("NA".into(), |v| format!("{v:.3}")),
            pc.map_or("NA".into(), |v| format!("{v:.3}")),
        ]);
        data.push(Fig1Row {
            name: r.name.clone(),
            hybrid_seconds: h.seconds,
            benchmark_norm: bm,
            purecap_norm: pc,
        });
    }
    (t, data)
}

/// Figure 2: binary-section sizes normalised to hybrid (median across
/// workloads), with absolute sizes for sections absent under hybrid.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2Row {
    /// Section name.
    pub section: String,
    /// Median benchmark/hybrid size ratio (`None`: absent in hybrid).
    pub benchmark_ratio: Option<f64>,
    /// Median purecap/hybrid size ratio.
    pub purecap_ratio: Option<f64>,
    /// Median absolute size under purecap in bytes (for hybrid-absent
    /// sections).
    pub purecap_bytes: u64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    if v.is_empty() {
        return 0.0;
    }
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Builds Figure 2.
pub fn fig2_binsize(rows: &[SuiteRow]) -> (Table, Vec<Fig2Row>) {
    let mut t = Table::new(&[
        "Section",
        "benchmark/hybrid",
        "purecap/hybrid",
        "purecap bytes (median)",
    ]);
    let mut data = Vec::new();
    let n_sections = rows
        .first()
        .and_then(|r| r.get(Abi::Hybrid))
        .map(|h| h.binary.named().len())
        .unwrap_or(0);
    for s in 0..n_sections + 1 {
        let mut ratios_bm = Vec::new();
        let mut ratios_pc = Vec::new();
        let mut abs_pc = Vec::new();
        let mut name = String::from("total");
        let mut hybrid_present = false;
        for r in rows {
            let Some(h) = r.get(Abi::Hybrid) else {
                continue;
            };
            let p = match r.get(Abi::Purecap) {
                Some(p) => p,
                None => continue,
            };
            let (h_sz, p_sz, bm_sz) = if s == n_sections {
                let bm = r.get(Abi::Benchmark).map(|b| b.binary.total());
                (h.binary.total(), p.binary.total(), bm)
            } else {
                name = h.binary.named()[s].0.to_owned();
                let bm = r.get(Abi::Benchmark).map(|b| b.binary.named()[s].1);
                (h.binary.named()[s].1, p.binary.named()[s].1, bm)
            };
            abs_pc.push(p_sz as f64);
            if h_sz > 0 {
                hybrid_present = true;
                ratios_pc.push(p_sz as f64 / h_sz as f64);
                if let Some(bm) = bm_sz {
                    ratios_bm.push(bm as f64 / h_sz as f64);
                }
            }
        }
        let row = Fig2Row {
            section: name.clone(),
            benchmark_ratio: hybrid_present.then(|| median(ratios_bm.clone())),
            purecap_ratio: hybrid_present.then(|| median(ratios_pc.clone())),
            purecap_bytes: median(abs_pc) as u64,
        };
        t.row(&[
            name,
            row.benchmark_ratio
                .map_or("absolute".into(), |v| format!("{v:.2}x")),
            row.purecap_ratio
                .map_or("absolute".into(), |v| format!("{v:.2}x")),
            format!("{}", row.purecap_bytes),
        ]);
        data.push(row);
    }
    (t, data)
}

/// Figure 3 / Table 4: the top-down breakdown, one column group per
/// workload, three values per cell (hybrid, benchmark, purecap — the
/// paper's comma convention; NA printed for missing cells).
pub fn fig3_table4_topdown(rows: &[SuiteRow]) -> Table {
    let mut t = Table::new(&["Metric", "hybrid", "benchmark", "purecap", "Benchmark"]);
    for r in rows {
        let cell = |f: &dyn Fn(&morello_sim::RunReport) -> String, abi: Abi| -> String {
            r.get(abi).map_or("NA".into(), f)
        };
        type MetricFn = Box<dyn Fn(&morello_sim::RunReport) -> String>;
        let metrics: Vec<(&str, MetricFn)> = vec![
            (
                "Execution Time (s)",
                Box::new(|r| format!("{:.4}", r.seconds)),
            ),
            ("Speedup", Box::new(|r| format!("{:.3}", r.seconds))),
            ("IPC", Box::new(|r| fmt_metric(r.derived.ipc))),
            ("Retiring", Box::new(|r| fmt_metric(r.topdown.retiring))),
            (
                "Bad Spec",
                Box::new(|r| fmt_metric(r.topdown.bad_speculation)),
            ),
            (
                "Frontend Bound",
                Box::new(|r| fmt_metric(r.topdown.frontend_bound)),
            ),
            (
                "Backend Bound",
                Box::new(|r| fmt_metric(r.topdown.backend_bound)),
            ),
            (
                "+ Memory Bound",
                Box::new(|r| fmt_metric(r.topdown.memory_bound)),
            ),
            ("--- L1 Bound", Box::new(|r| fmt_metric(r.topdown.l1_bound))),
            ("--- L2 Bound", Box::new(|r| fmt_metric(r.topdown.l2_bound))),
            (
                "--- ExtMem Bound",
                Box::new(|r| fmt_metric(r.topdown.ext_mem_bound)),
            ),
            (
                "+ Core Bound",
                Box::new(|r| fmt_metric(r.topdown.core_bound)),
            ),
        ];
        for (name, f) in &metrics {
            // Speedup row: normalised to hybrid, like the paper.
            if *name == "Speedup" {
                let h = r.get(Abi::Hybrid).map(|x| x.seconds);
                let s = |abi: Abi| -> String {
                    match (h, r.get(abi)) {
                        (Some(h), Some(rep)) => format!("{:.3}", h / rep.seconds),
                        _ => "NA".into(),
                    }
                };
                t.row(&[
                    (*name).to_owned(),
                    s(Abi::Hybrid),
                    s(Abi::Benchmark),
                    s(Abi::Purecap),
                    r.name.clone(),
                ]);
                continue;
            }
            t.row(&[
                (*name).to_owned(),
                cell(&|rep| f(rep), Abi::Hybrid),
                cell(&|rep| f(rep), Abi::Benchmark),
                cell(&|rep| f(rep), Abi::Purecap),
                r.name.clone(),
            ]);
        }
    }
    t
}

/// Figure 4: core-bound vs memory-bound percentages per workload and ABI.
pub fn fig4_bounds(rows: &[SuiteRow]) -> Table {
    let mut t = Table::new(&["Benchmark", "ABI", "Memory Bound %", "Core Bound %"]);
    for r in rows {
        for abi in Abi::ALL {
            if let Some(rep) = r.get(abi) {
                t.row(&[
                    r.name.clone(),
                    abi.to_string(),
                    pct(rep.topdown.memory_bound),
                    pct(rep.topdown.core_bound),
                ]);
            }
        }
    }
    t
}

/// Figure 5: speculative-instruction-mix distribution per ABI, plus the
/// paper's headline deltas (DP_SPEC growth, LD/ST stability).
pub fn fig5_instmix(rows: &[SuiteRow]) -> Table {
    let mut t = Table::new(&[
        "Benchmark",
        "ABI",
        "DP %",
        "LD %",
        "ST %",
        "VFP %",
        "ASE %",
        "BR %",
    ]);
    for r in rows {
        for abi in Abi::ALL {
            if let Some(rep) = r.get(abi) {
                let s = &rep.stats;
                let tot = s.inst_spec.max(1) as f64;
                let br = s.br_immed_spec + s.br_indirect_spec + s.br_return_spec;
                t.row(&[
                    r.name.clone(),
                    abi.to_string(),
                    pct(s.dp_spec as f64 / tot),
                    pct(s.ld_spec as f64 / tot),
                    pct(s.st_spec as f64 / tot),
                    pct(s.vfp_spec as f64 / tot),
                    pct(s.ase_spec as f64 / tot),
                    pct(br as f64 / tot),
                ]);
            }
        }
    }
    t
}

/// Summary statistics for Figure 5's headline claim: the DP_SPEC share
/// grows under purecap while LD/ST shares stay stable.
#[derive(Clone, Debug, Serialize)]
pub struct InstMixShift {
    /// Minimum DP-share growth (percentage points) across workloads.
    pub dp_growth_min: f64,
    /// Maximum DP-share growth.
    pub dp_growth_max: f64,
    /// Standard deviation of the LD-share delta.
    pub ld_delta_std: f64,
    /// Standard deviation of the ST-share delta.
    pub st_delta_std: f64,
}

/// Computes the instruction-mix-shift summary.
pub fn fig5_shift_summary(rows: &[SuiteRow]) -> InstMixShift {
    let mut dp_growth = Vec::new();
    let mut ld_delta = Vec::new();
    let mut st_delta = Vec::new();
    for r in rows {
        let (Some(h), Some(p)) = (r.get(Abi::Hybrid), r.get(Abi::Purecap)) else {
            continue;
        };
        let share = |s: &morello_uarch::UarchStats, v: u64| v as f64 / s.inst_spec.max(1) as f64;
        dp_growth
            .push((share(&p.stats, p.stats.dp_spec) - share(&h.stats, h.stats.dp_spec)) * 100.0);
        ld_delta
            .push((share(&p.stats, p.stats.ld_spec) - share(&h.stats, h.stats.ld_spec)) * 100.0);
        st_delta
            .push((share(&p.stats, p.stats.st_spec) - share(&h.stats, h.stats.st_spec)) * 100.0);
    }
    let std = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len().max(1) as f64;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64).sqrt()
    };
    InstMixShift {
        dp_growth_min: dp_growth.iter().copied().fold(f64::INFINITY, f64::min),
        dp_growth_max: dp_growth.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ld_delta_std: std(&ld_delta),
        st_delta_std: std(&st_delta),
    }
}

/// Figure 6: memory-bound analysis — which level of the hierarchy the
/// backend-memory stalls come from.
pub fn fig6_membound(rows: &[SuiteRow]) -> Table {
    let mut t = Table::new(&[
        "Benchmark",
        "ABI",
        "L1 %",
        "L2 %",
        "ExtMem %",
        "of total cycles %",
    ]);
    for r in rows {
        for abi in Abi::ALL {
            if let Some(rep) = r.get(abi) {
                let m = rep.topdown.memory_bound.max(1e-12);
                t.row(&[
                    r.name.clone(),
                    abi.to_string(),
                    pct(rep.topdown.l1_bound / m),
                    pct(rep.topdown.l2_bound / m),
                    pct(rep.topdown.ext_mem_bound / m),
                    pct(rep.topdown.memory_bound),
                ]);
            }
        }
    }
    t
}

/// Figure 7: Pearson correlation matrix across derived metrics, computed
/// over the workload population for one ABI.
pub fn fig7_correlation(rows: &[SuiteRow], abi: Abi) -> (Table, Vec<Vec<f64>>) {
    let mut labels: Vec<&'static str> = Vec::new();
    let mut series: Vec<Vec<f64>> = Vec::new();
    for r in rows {
        if let Some(rep) = r.get(abi) {
            let lv = rep.derived.labelled();
            if labels.is_empty() {
                labels = lv.iter().map(|(l, _)| *l).collect();
                series = vec![Vec::new(); labels.len()];
            }
            for (i, (_, v)) in lv.iter().enumerate() {
                series[i].push(*v);
            }
        }
    }
    let m = correlation_matrix(&series);
    let mut headers = vec!["metric"];
    headers.extend(labels.iter().copied());
    let mut t = Table::new(&headers);
    for (i, l) in labels.iter().enumerate() {
        let mut row = vec![l.to_string()];
        row.extend(m[i].iter().map(|v| format!("{v:+.2}")));
        t.row(&row);
    }
    (t, m)
}

/// Table 2: memory-intensity classification, with the paper's value for
/// comparison.
pub fn table2_memory_intensity(rows: &[SuiteRow]) -> Table {
    let mut t = Table::new(&[
        "Benchmark",
        "MI (measured)",
        "MI (paper)",
        "class",
        "quar hwm (KiB)",
        "epochs",
    ]);
    for r in rows {
        if let Some(h) = r.get(Abi::Hybrid) {
            let paper = by_key(&r.key)
                .and_then(|w| w.table2_mi)
                .map_or("-".to_owned(), |v| format!("{v:.3}"));
            // Quarantine columns come from the purecap run: the hybrid
            // ABI always uses the classic (non-quarantining) allocator.
            let (quar, epochs) = r.get(Abi::Purecap).map_or(("-".into(), "-".into()), |p| {
                (
                    format!("{:.1}", p.heap.quarantine_bytes_hwm as f64 / 1024.0),
                    p.heap.revocation_epochs.to_string(),
                )
            });
            t.row(&[
                r.name.clone(),
                format!("{:.3}", h.derived.memory_intensity),
                paper,
                h.derived.intensity_class().to_owned(),
                quar,
                epochs,
            ]);
        }
    }
    t
}

/// Table 3: aggregated key metrics for the representative workloads. Each
/// metric prints three lines (hybrid, benchmark, purecap), like the
/// paper's stacked cells.
pub fn table3_key_metrics(rows: &[SuiteRow]) -> Table {
    let mut headers: Vec<String> = vec!["Metric".into(), "ABI".into()];
    headers.extend(rows.iter().map(|r| r.name.clone()));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);

    type Getter = fn(&morello_sim::RunReport) -> f64;
    let metrics: [(&str, Getter); 11] = [
        ("Execution Time (s)", |r| r.seconds),
        ("IPC", |r| r.derived.ipc),
        ("Branch MR (%)", |r| {
            r.derived.branch_mispredict_rate * 100.0
        }),
        ("L1I MR (%)", |r| r.derived.l1i_miss_rate * 100.0),
        ("L1D MR (%)", |r| r.derived.l1d_miss_rate * 100.0),
        ("L2D MR (%)", |r| r.derived.l2_miss_rate * 100.0),
        ("LLC Read MR (%)", |r| r.derived.llc_read_miss_rate * 100.0),
        ("Cap Load Density (%)", |r| {
            r.derived.cap_load_density * 100.0
        }),
        ("Cap Store Density (%)", |r| {
            r.derived.cap_store_density * 100.0
        }),
        ("Cap Traffic Share (%)", |r| {
            r.derived.cap_traffic_share * 100.0
        }),
        ("Cap Tag Overhead (%)", |r| {
            r.derived.cap_tag_overhead * 100.0
        }),
    ];
    for (name, get) in metrics {
        for abi in Abi::ALL {
            let mut cells = vec![name.to_owned(), abi.to_string()];
            for r in rows {
                cells.push(r.get(abi).map_or("NA".into(), |rep| fmt_metric(get(rep))));
            }
            t.row(&cells);
        }
    }
    t
}

/// One point of the Figure 8 revocation-overhead curves: one ABI at one
/// quarantine threshold (`0` = the padded baseline, which quarantines
/// but never tag-sweeps).
#[derive(Clone, Debug, Serialize)]
pub struct Fig8Point {
    /// Quarantine byte threshold in KiB (`0` = padded baseline).
    pub quarantine_kib: u64,
    /// The ABI of this point.
    pub abi: Abi,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Time normalised to the same threshold's hybrid run.
    pub overhead_vs_hybrid: Option<f64>,
    /// Revocation epochs triggered.
    pub revocation_epochs: u64,
    /// Capability granules visited by tag sweeps.
    pub sweep_granules_visited: u64,
    /// Stale tags cleared by tag sweeps.
    pub sweep_tags_cleared: u64,
    /// Quarantine occupancy high-water mark in bytes.
    pub quarantine_bytes_hwm: u64,
}

/// Figure 8: revocation overhead vs quarantine threshold. `sets` pairs
/// each threshold (KiB; `0` = padded baseline) with the suite rows run
/// under that allocator strategy — the binary runs `alloc_stress`, but
/// any selection works.
pub fn fig8_revocation(sets: &[(u64, Vec<SuiteRow>)]) -> (Table, Vec<Fig8Point>) {
    let mut t = Table::new(&[
        "Quarantine",
        "Benchmark",
        "ABI",
        "time (s)",
        "vs hybrid",
        "epochs",
        "granules swept",
        "tags cleared",
        "quar hwm (KiB)",
    ]);
    let mut data = Vec::new();
    for (kib, rows) in sets {
        for r in rows {
            let hybrid_secs = r.get(Abi::Hybrid).map(|h| h.seconds);
            for abi in Abi::ALL {
                let rep = match r.get(abi) {
                    Some(rep) => rep,
                    None => continue,
                };
                let over = hybrid_secs.filter(|h| *h > 0.0).map(|h| rep.seconds / h);
                let label = if *kib == 0 {
                    "padded".to_owned()
                } else {
                    format!("{kib} KiB")
                };
                t.row(&[
                    label,
                    r.name.clone(),
                    abi.to_string(),
                    format!("{:.4}", rep.seconds),
                    over.map_or("-".into(), |v| format!("{v:.3}")),
                    rep.heap.revocation_epochs.to_string(),
                    rep.counts.get(PmuEvent::SweepGranulesVisited).to_string(),
                    rep.counts.get(PmuEvent::SweepTagsCleared).to_string(),
                    format!("{:.1}", rep.heap.quarantine_bytes_hwm as f64 / 1024.0),
                ]);
                data.push(Fig8Point {
                    quarantine_kib: *kib,
                    abi,
                    seconds: rep.seconds,
                    overhead_vs_hybrid: over,
                    revocation_epochs: rep.heap.revocation_epochs,
                    sweep_granules_visited: rep.counts.get(PmuEvent::SweepGranulesVisited),
                    sweep_tags_cleared: rep.counts.get(PmuEvent::SweepTagsCleared),
                    quarantine_bytes_hwm: rep.heap.quarantine_bytes_hwm,
                });
            }
        }
    }
    (t, data)
}

/// One row of the Figure 10 opcode-class attribution: one class under
/// one ABI, aggregated over the selection.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Row {
    /// The ABI of this row.
    pub abi: Abi,
    /// Opcode-class label (matches `cheri_isa::OpClass::name`).
    pub class: String,
    /// Retired instructions attributed to the class.
    pub retired: u64,
    /// Model cycles attributed to the class.
    pub cycles: u64,
    /// Share of the ABI's total retired instructions.
    pub retired_share: f64,
    /// Share of the ABI's total model cycles.
    pub cycle_share: f64,
    /// Cycles per instruction within the class (`None` when it retired
    /// nothing).
    pub cpi: Option<f64>,
}

/// Figure 10: where purecap's extra work comes from. Every retired
/// instruction and every model cycle is attributed to exactly one of
/// the eight opcode classes (the counts partition `INST_RETIRED` and
/// `CPU_CYCLES`), aggregated over the selection per ABI — so the
/// hybrid→purecap shift shows up as the cap-manip / cap-branch /
/// mem-cap shares growing at the int-alu and mem-scalar shares'
/// expense.
pub fn fig10_opcode_classes(rows: &[SuiteRow]) -> (Table, Vec<Fig10Row>) {
    let classes = PmuEvent::opcode_class_pairs();
    let mut t = Table::new(&["ABI", "class", "retired", "ret %", "cycles", "cyc %", "CPI"]);
    let mut data = Vec::new();
    for abi in Abi::ALL {
        let mut per = [(0u64, 0u64); 8];
        let mut any = false;
        for r in rows {
            if let Some(rep) = r.get(abi) {
                any = true;
                for (slot, (_, retired_ev, cycles_ev)) in per.iter_mut().zip(classes.iter()) {
                    slot.0 += rep.counts.get(*retired_ev);
                    slot.1 += rep.counts.get(*cycles_ev);
                }
            }
        }
        if !any {
            continue;
        }
        let total_retired: u64 = per.iter().map(|p| p.0).sum();
        let total_cycles: u64 = per.iter().map(|p| p.1).sum();
        for ((label, _, _), (retired, cycles)) in classes.iter().zip(per) {
            let retired_share = if total_retired > 0 {
                retired as f64 / total_retired as f64
            } else {
                0.0
            };
            let cycle_share = if total_cycles > 0 {
                cycles as f64 / total_cycles as f64
            } else {
                0.0
            };
            let cpi = (retired > 0).then(|| cycles as f64 / retired as f64);
            t.row(&[
                abi.to_string(),
                (*label).to_owned(),
                retired.to_string(),
                pct(retired_share),
                cycles.to_string(),
                pct(cycle_share),
                cpi.map_or("-".into(), fmt_metric),
            ]);
            data.push(Fig10Row {
                abi,
                class: (*label).to_owned(),
                retired,
                cycles,
                retired_share,
                cycle_share,
                cpi,
            });
        }
    }
    (t, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_workloads::Scale;
    use morello_sim::suite::{run_suite, select};
    use morello_sim::{Platform, Runner};

    fn tiny_rows() -> Vec<SuiteRow> {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        run_suite(&runner, &select(&["lbm_519", "omnetpp_520", "quickjs"])).unwrap()
    }

    #[test]
    fn every_generator_renders() {
        let rows = tiny_rows();
        let (t1, d1) = fig1_overall(&rows);
        assert_eq!(t1.len(), 3);
        assert_eq!(d1.len(), 3);
        let (t2, d2) = fig2_binsize(&rows);
        assert!(t2.len() >= 10);
        assert_eq!(d2.last().unwrap().section, "total");
        let t3 = fig3_table4_topdown(&rows);
        assert!(t3.len() >= 12 * 3);
        assert!(fig4_bounds(&rows).len() >= 8);
        assert!(fig5_instmix(&rows).len() >= 8);
        assert!(fig6_membound(&rows).len() >= 8);
        let (t7, m) = fig7_correlation(&rows, Abi::Purecap);
        assert_eq!(m.len(), 15);
        assert!(!t7.is_empty());
        assert_eq!(table2_memory_intensity(&rows).len(), 3);
        assert!(table3_key_metrics(&rows).len() == 11 * 3);
        let (t10, d10) = fig10_opcode_classes(&rows);
        assert_eq!(t10.len(), 3 * 8);
        assert_eq!(d10.len(), 3 * 8);
    }

    #[test]
    fn fig10_classes_partition_retired_and_cycles() {
        let rows = tiny_rows();
        let (_, data) = fig10_opcode_classes(&rows);
        for abi in Abi::ALL {
            let reports: Vec<_> = rows.iter().filter_map(|r| r.get(abi)).collect();
            let want_retired: u64 = reports
                .iter()
                .map(|rep| rep.counts.get(PmuEvent::InstRetired))
                .sum();
            let want_cycles: u64 = reports
                .iter()
                .map(|rep| rep.counts.get(PmuEvent::CpuCycles))
                .sum();
            let class_rows: Vec<_> = data.iter().filter(|d| d.abi == abi).collect();
            let got_retired: u64 = class_rows.iter().map(|d| d.retired).sum();
            let got_cycles: u64 = class_rows.iter().map(|d| d.cycles).sum();
            assert_eq!(
                got_retired, want_retired,
                "{abi}: classes partition retired"
            );
            assert_eq!(got_cycles, want_cycles, "{abi}: classes partition cycles");
        }
        // Purecap shifts work into the capability classes.
        let share = |abi: Abi, class: &str| {
            data.iter()
                .find(|d| d.abi == abi && d.class == class)
                .map_or(0.0, |d| d.retired_share)
        };
        assert!(share(Abi::Purecap, "cap-manip") > share(Abi::Hybrid, "cap-manip"));
        assert!(share(Abi::Purecap, "mem-cap") > share(Abi::Hybrid, "mem-cap"));
    }

    #[test]
    fn fig1_marks_na() {
        let rows = tiny_rows();
        let quickjs = d1_for(&rows, "QuickJS");
        assert!(quickjs.benchmark_norm.is_none());
        assert!(quickjs.purecap_norm.is_some());
    }

    fn d1_for(rows: &[SuiteRow], name: &str) -> Fig1Row {
        fig1_overall(rows)
            .1
            .into_iter()
            .find(|r| r.name == name)
            .expect("row present")
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(vec![]), 0.0);
    }

    #[test]
    fn fig5_summary_shows_dp_growth() {
        let rows = tiny_rows();
        let s = fig5_shift_summary(&rows);
        assert!(s.dp_growth_max > 0.0, "purecap must add DP work");
    }

    #[test]
    fn fig8_curves_are_monotone_and_hybrid_is_free() {
        use morello_sim::suite::{run_suite_with, SuiteConfig};
        use morello_sim::{ProgramCache, StrategyKind};
        let base = Platform::morello().with_scale(Scale::Test);
        let workloads = select(&["alloc_stress"]);
        let cache = ProgramCache::new();
        let config = SuiteConfig::with_jobs(1);
        let mut sets = Vec::new();
        for kib in [0u64, 16, 32, 64, 256] {
            let platform = if kib == 0 {
                base
            } else {
                base.with_cap_alloc(StrategyKind::swept_bytes(kib * 1024))
            };
            let rows = run_suite_with(&Runner::new(platform), &workloads, &cache, &config).unwrap();
            sets.push((kib, rows));
        }
        let (t, points) = fig8_revocation(&sets);
        assert_eq!(t.len(), 5 * 3);
        assert_eq!(points.len(), 5 * 3);
        // Hybrid never sweeps and costs the same at every threshold.
        let hybrid: Vec<_> = points.iter().filter(|p| p.abi == Abi::Hybrid).collect();
        for h in &hybrid {
            assert_eq!(h.sweep_granules_visited, 0);
            assert_eq!(h.revocation_epochs, 0);
            assert_eq!(h.seconds, hybrid[0].seconds);
        }
        // Purecap: sweeping strategies sweep, and a larger quarantine
        // amortises — overhead decreases monotonically with threshold.
        let pc: Vec<_> = points.iter().filter(|p| p.abi == Abi::Purecap).collect();
        assert!(pc[1].sweep_granules_visited > 0, "16 KiB threshold sweeps");
        for w in pc[1..].windows(2) {
            assert!(
                w[1].overhead_vs_hybrid.unwrap() <= w[0].overhead_vs_hybrid.unwrap(),
                "larger quarantine must not cost more: {:?} -> {:?}",
                w[0].quarantine_kib,
                w[1].quarantine_kib
            );
            assert!(w[1].revocation_epochs <= w[0].revocation_epochs);
        }
        // The program cache was shared across every strategy platform.
        assert_eq!(cache.misses(), 3);
    }
}
