//! The `bench_speed` harness: measures how fast the reproduction itself
//! runs, and `bench_compare`'s regression gate over the result.
//!
//! The report splits hard along the determinism boundary:
//!
//! * **`model`** — values derived from the simulation model only
//!   (retired instructions, model cycles, per-opcode-class attribution,
//!   simulated seconds, lowered-program cache hit rate). Byte-identical
//!   across hosts and `--jobs` values; this is the section
//!   `bench_compare` gates on.
//! * **`host`** — wall-clock measurements of the harness itself, every
//!   field prefixed `host_` (suite wall-time at `--jobs {1,N}`,
//!   host-side retired-insts/sec per ABI, simulated-vs-host throughput
//!   ratios, and the observer-effect overheads of sampling/tracing).
//!   Never part of golden or baseline comparisons.
//!
//! The `bench_speed` binary drives [`run_bench`] and writes
//! `BENCH_interp.json` at the repo root; `bench_compare` diffs two such
//! files with [`compare`] and exits nonzero past `--threshold`.

use cheri_isa::{superblock_stats, Abi};
use cheri_workloads::Scale;
use morello_obs::{run_sampled, Tracer};
use morello_pmu::{fmt_metric, PmuEvent, Table};
use morello_sim::suite::{run_suite_traced, select, SuiteConfig, SuiteRow, TABLE3_KEYS};
use morello_sim::{Platform, ProgramCache, RunError, Runner, SpanSink};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema version stamped into every `BENCH_interp.json`; bump on any
/// shape change so `bench_compare` refuses cross-schema diffs.
///
/// v2: the `model` section gained the `dispatch` subsection (engine
/// dispatch mode plus per-ABI superblock structure and block-size
/// histogram).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// How the engine leg reaches its handlers: the direct-threaded
/// superblock engine (fn-pointer table over fused micro-op blocks).
/// Stamped into the report so a future dispatch-strategy change is
/// visible in the artefact, not just the commit log.
pub const DISPATCH_MODE: &str = "fn_ptr_superblocks";

/// The `--quick` workload selection: the golden-report five, run at
/// test scale. The full selection is the paper's Table 3 set at the
/// environment-selected scale.
pub const QUICK_KEYS: [&str; 5] = [
    "lbm_519",
    "omnetpp_520",
    "xz_557",
    "quickjs",
    "alloc_stress",
];

/// The sampling window (model cycles) used by the observer-effect
/// measurement.
pub const OBSERVER_WINDOW: u64 = 10_000;

/// Timed repetitions of the engine leg per workload. The leg measures
/// the interpreter's steady-state throughput, so each workload gets
/// one untimed warmup run (first-touch page faults, host caches) and
/// then this many individually-timed repetitions, of which the
/// *fastest* is kept (best-of-N, the `timeit`/hyperfine convention:
/// external load only ever adds time, so the minimum is the best
/// estimate of the engine's own speed).
pub const ENGINE_LEG_REPS: u32 = 5;

/// Model attribution of one opcode class within one ABI.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSpeedRow {
    /// Opcode-class label (matches `cheri_isa::OpClass::name`).
    pub class: String,
    /// Retired instructions attributed to the class.
    pub retired: u64,
    /// Model cycles attributed to the class.
    pub cycles: u64,
}

/// Deterministic model totals for one ABI, aggregated over the
/// selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbiModel {
    /// ABI label (`hybrid` / `benchmark` / `purecap`).
    pub abi: String,
    /// Total retired instructions.
    pub retired: u64,
    /// Total model cycles.
    pub cycles: u64,
    /// Total simulated seconds at the platform clock.
    pub sim_seconds: f64,
    /// Per-opcode-class attribution; `retired`/`cycles` partition the
    /// totals above exactly.
    pub classes: Vec<ClassSpeedRow>,
}

/// Lowered-program cache statistics over the two sweeps (`--jobs 1`
/// fresh, `--jobs N` warm) — deterministic by construction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheModel {
    /// Lookups that lowered (first sweep: one per cell).
    pub misses: u64,
    /// Lookups served from cache (second sweep: one per cell).
    pub hits: u64,
    /// `hits / (hits + misses)` — exactly `0.5` when both sweeps ran.
    pub hit_rate: f64,
}

/// Superblock structure of one ABI's lowered selection: what the
/// direct-threaded engine actually dispatches. Decode-derived, so
/// deterministic — a lowering change that reshapes the partition moves
/// these counts and trips the gate.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DispatchAbi {
    /// ABI label.
    pub abi: String,
    /// Superblocks across the selection's functions.
    pub blocks: u64,
    /// Packed interior micro-ops (fast-path fn-pointer dispatched).
    pub interior_ops: u64,
    /// Ops kept as terminators (inline-branched or slow-path stepped).
    pub terminators: u64,
    /// Blocks that fall through to the next block without a terminator.
    pub fallthrough_blocks: u64,
    /// `size_hist[k]` = blocks with `k` interior ops; the last bucket
    /// aggregates every larger block. Buckets sum to `blocks`.
    pub size_hist: Vec<u64>,
}

/// Dispatch-structure subsection of the model: the engine's dispatch
/// mode and the per-ABI superblock partition of the selection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DispatchModel {
    /// [`DISPATCH_MODE`].
    pub mode: String,
    /// Per-ABI partition totals and block-size histogram.
    pub abis: Vec<DispatchAbi>,
}

/// The deterministic section of the report: model-derived only,
/// byte-identical across hosts and `--jobs` values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSection {
    /// Workload keys in run order.
    pub workloads: Vec<String>,
    /// Per-ABI totals.
    pub abis: Vec<AbiModel>,
    /// Lowered-program cache behaviour.
    pub cache: CacheModel,
    /// Engine dispatch structure (absent in pre-v2 reports).
    #[serde(default)]
    pub dispatch: DispatchModel,
}

/// Host-side throughput of one ABI (interpreter speed on this machine).
///
/// Two legs are timed over the same pre-lowered programs:
///
/// * the **engine leg** (`host_seconds` / `host_insts_per_sec`) runs
///   the architectural fast path alone — per-class counts accumulate
///   batched inside the engine and no per-instruction event crosses
///   into the timing model. Each workload is timed
///   [`ENGINE_LEG_REPS`] times after a warmup and the fastest rep
///   counts, so transient host load does not depress the rate. This
///   is the interpreter's own speed and the number the CI lower bound
///   gates on.
/// * the **timed leg** (`host_seconds_timed` /
///   `host_insts_per_sec_timed`) attaches the full
///   [`TimingCore`](morello_uarch::TimingCore) sink, paying the
///   per-event cache/TLB/branch model plus per-class cycle
///   attribution. `host_sim_ratio` is defined on this leg, since only
///   it produces simulated time.
///
/// The `_timed` fields default to `0.0` when absent so reports written
/// before they existed still parse.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostAbiRate {
    /// ABI label.
    pub abi: String,
    /// Host wall-clock seconds of the engine leg: the sum over
    /// workloads of each workload's best timed rep (lowering excluded —
    /// programs come pre-lowered from the cache).
    pub host_seconds: f64,
    /// Retired instructions per host second on the engine leg.
    pub host_insts_per_sec: f64,
    /// Simulated seconds per host second of the timed leg (how much
    /// Morello time one host second buys with the model attached).
    pub host_sim_ratio: f64,
    /// Host wall-clock seconds of the timed (model-attached) leg.
    #[serde(default)]
    pub host_seconds_timed: f64,
    /// Retired instructions per host second on the timed leg.
    #[serde(default)]
    pub host_insts_per_sec_timed: f64,
}

/// The observer effect: the same cell run plain, under the
/// [`IntervalSampler`](morello_obs::IntervalSampler), and under a live
/// [`Tracer`] — each timed end-to-end (lower + run) on the host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObserverEffect {
    /// The measured workload key.
    pub workload: String,
    /// The measured ABI.
    pub abi: String,
    /// Host seconds for the plain run.
    pub host_plain_seconds: f64,
    /// Host seconds under windowed PMU sampling.
    pub host_sampled_seconds: f64,
    /// Host seconds under span tracing.
    pub host_traced_seconds: f64,
    /// `sampled / plain` — the cost of `pmcstat -w`-style collection.
    pub host_sampling_overhead: f64,
    /// `traced / plain` — the cost of `--trace`.
    pub host_tracing_overhead: f64,
}

/// Host-side measurements: wall-clock dependent, excluded from golden
/// and baseline comparisons (every field carries the `host_` prefix).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostSection {
    /// Worker count of the parallel sweep.
    pub host_jobs: u64,
    /// Suite wall-clock at `--jobs 1` (fresh cache).
    pub host_wall_seconds_jobs1: f64,
    /// Suite wall-clock at `--jobs N` (warm cache).
    pub host_wall_seconds_jobs_n: f64,
    /// `jobs1 / jobsN` wall-clock speedup.
    ///
    /// Only meaningful when `host_jobs > 1`. On a single-CPU host the
    /// scheduler clamps both sweeps to one worker, so the two legs
    /// differ only by cache warmth and this ratio is `1.0` plus
    /// wall-clock noise — values slightly below `1.0` (e.g. a recorded
    /// `0.83` with `host_jobs: 1`) indicate measurement jitter, not
    /// pool overhead: the work-stealing pool runs the identical serial
    /// schedule in both sweeps.
    pub host_parallel_speedup: f64,
    /// Per-ABI interpreter throughput.
    pub host_abi_rates: Vec<HostAbiRate>,
    /// Sampling/tracing overhead vs a plain run.
    pub host_observer_effect: ObserverEffect,
}

/// The `BENCH_interp.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Scale label (`test` / `small` / `default`).
    pub scale: String,
    /// Deterministic model section (the gated part).
    pub model: ModelSection,
    /// Host wall-clock section (informational only).
    pub host: HostSection,
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Default => "default",
    }
}

fn abi_models(rows: &[SuiteRow]) -> Vec<AbiModel> {
    let pairs = PmuEvent::opcode_class_pairs();
    Abi::ALL
        .iter()
        .map(|&abi| {
            let reports: Vec<_> = rows.iter().filter_map(|r| r.get(abi)).collect();
            let classes = pairs
                .iter()
                .map(|(label, retired_ev, cycles_ev)| ClassSpeedRow {
                    class: (*label).to_owned(),
                    retired: reports.iter().map(|rep| rep.counts.get(*retired_ev)).sum(),
                    cycles: reports.iter().map(|rep| rep.counts.get(*cycles_ev)).sum(),
                })
                .collect();
            AbiModel {
                abi: abi.to_string(),
                retired: reports.iter().map(|rep| rep.retired).sum(),
                cycles: reports
                    .iter()
                    .map(|rep| rep.counts.get(PmuEvent::CpuCycles))
                    .sum(),
                sim_seconds: reports.iter().map(|rep| rep.seconds).sum(),
                classes,
            }
        })
        .collect()
}

/// Runs the full measurement matrix and assembles the report:
///
/// 1. the suite at `--jobs 1` on a fresh cache (every cell lowers),
/// 2. the same suite at `--jobs N` on the now-warm cache (every cell
///    hits) — the model section is read off sweep 1, the cache stats
///    after sweep 2 (hit rate exactly 0.5),
/// 3. a per-ABI execution-only timing pass over the pre-lowered
///    programs, once on the architectural engine alone
///    (`host_insts_per_sec`) and once with the timing model attached
///    (`host_insts_per_sec_timed`, simulated-vs-host ratio) — the two
///    legs must agree on the retired-instruction count,
/// 4. the observer-effect cell (plain vs sampled vs traced).
///
/// # Errors
///
/// Propagates the first [`RunError`] in canonical cell order.
pub fn run_bench(quick: bool, jobs: usize, spans: &dyn SpanSink) -> Result<BenchReport, RunError> {
    let scale = if quick {
        Scale::Test
    } else {
        crate::scale_from_env()
    };
    let keys: Vec<&str> = if quick {
        QUICK_KEYS.to_vec()
    } else {
        TABLE3_KEYS.to_vec()
    };
    let workloads = select(&keys);
    let platform = Platform::morello().with_scale(scale);
    let runner = Runner::new(platform);
    let cache = ProgramCache::new();

    let started = Instant::now();
    let rows = run_suite_traced(
        &runner,
        &workloads,
        &cache,
        &SuiteConfig::with_jobs(1),
        None,
        spans,
    )?;
    let host_wall_seconds_jobs1 = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let _warm = run_suite_traced(
        &runner,
        &workloads,
        &cache,
        &SuiteConfig::with_jobs(jobs),
        None,
        spans,
    )?;
    let host_wall_seconds_jobs_n = started.elapsed().as_secs_f64();

    // Cache stats are captured here, before the timing passes below
    // take extra (hit) lookups: misses == hits == the cell count.
    let (misses, hits) = (cache.misses(), cache.hits());
    let cache_model = CacheModel {
        misses,
        hits,
        hit_rate: if misses + hits > 0 {
            hits as f64 / (misses + hits) as f64
        } else {
            0.0
        },
    };

    let mut host_abi_rates = Vec::new();
    let mut dispatch_abis = Vec::new();
    for &abi in &Abi::ALL {
        let mut host_seconds = 0.0;
        let mut host_seconds_timed = 0.0;
        let mut retired = 0_u64;
        let mut retired_timed = 0_u64;
        let mut sim_seconds = 0.0;
        let mut dispatch = DispatchAbi {
            abi: abi.to_string(),
            ..DispatchAbi::default()
        };
        for w in workloads.iter().filter(|w| w.supports(abi)) {
            let prog = cache.get_or_lower(w, abi, scale);

            // Superblock partition of this cell — static decode
            // structure, folded per ABI into the model's dispatch
            // subsection.
            let sb = superblock_stats(&prog);
            dispatch.blocks += sb.blocks;
            dispatch.interior_ops += sb.interior_ops;
            dispatch.terminators += sb.terminators;
            dispatch.fallthrough_blocks += sb.fallthrough_blocks;
            if dispatch.size_hist.len() < sb.size_hist.len() {
                dispatch.size_hist.resize(sb.size_hist.len(), 0);
            }
            for (bucket, n) in sb.size_hist.iter().enumerate() {
                dispatch.size_hist[bucket] += n;
            }

            // Engine leg: architectural fast path, batched class counts
            // only — no per-event traffic into the timing model. One
            // untimed warmup, then [`ENGINE_LEG_REPS`] individually
            // timed runs of which the fastest counts (best-of-N).
            let arch = runner.run_lowered_arch(&prog)?;
            let mut best = f64::INFINITY;
            for _ in 0..ENGINE_LEG_REPS {
                let started = Instant::now();
                let rerun = runner.run_lowered_arch(&prog)?;
                let elapsed = started.elapsed().as_secs_f64();
                assert_eq!(arch.retired, rerun.retired, "{}/{abi}: reruns agree", w.key);
                best = best.min(elapsed);
            }
            retired += arch.retired;
            host_seconds += best;

            // Timed leg: same program with the full uarch model sink.
            let started = Instant::now();
            let rep = runner.run_lowered(w, abi, &prog)?;
            host_seconds_timed += started.elapsed().as_secs_f64();
            retired_timed += rep.retired;
            sim_seconds += rep.seconds;
            assert_eq!(
                arch.retired, rep.retired,
                "{}/{abi}: engine and timed legs must retire identically",
                w.key
            );
        }
        dispatch_abis.push(dispatch);
        host_abi_rates.push(HostAbiRate {
            abi: abi.to_string(),
            host_seconds,
            host_insts_per_sec: if host_seconds > 0.0 {
                retired as f64 / host_seconds
            } else {
                0.0
            },
            host_sim_ratio: if host_seconds_timed > 0.0 {
                sim_seconds / host_seconds_timed
            } else {
                0.0
            },
            host_seconds_timed,
            host_insts_per_sec_timed: if host_seconds_timed > 0.0 {
                retired_timed as f64 / host_seconds_timed
            } else {
                0.0
            },
        });
    }

    let host_observer_effect = observer_effect(&platform, &runner, scale)?;

    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        quick,
        scale: scale_label(scale).to_owned(),
        model: ModelSection {
            workloads: keys.iter().map(|k| (*k).to_owned()).collect(),
            abis: abi_models(&rows),
            cache: cache_model,
            dispatch: DispatchModel {
                mode: DISPATCH_MODE.to_owned(),
                abis: dispatch_abis,
            },
        },
        host: HostSection {
            host_jobs: jobs as u64,
            host_wall_seconds_jobs1,
            host_wall_seconds_jobs_n,
            host_parallel_speedup: if host_wall_seconds_jobs_n > 0.0 {
                host_wall_seconds_jobs1 / host_wall_seconds_jobs_n
            } else {
                0.0
            },
            host_abi_rates,
            host_observer_effect,
        },
    })
}

fn observer_effect(
    platform: &Platform,
    runner: &Runner,
    scale: Scale,
) -> Result<ObserverEffect, RunError> {
    let w = cheri_workloads::by_key("omnetpp_520").expect("registry workload");
    let abi = Abi::Purecap;

    // All three variants pay one lowering plus one run, so the ratios
    // isolate the observation cost.
    let started = Instant::now();
    let _plain = runner.run(&w, abi)?;
    let host_plain_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let _sampled = run_sampled(platform, &w, abi, OBSERVER_WINDOW)?;
    let host_sampled_seconds = started.elapsed().as_secs_f64();

    let tracer = Tracer::new();
    let local = ProgramCache::new();
    let started = Instant::now();
    let _traced = runner.run_with_cache_spanned(&w, abi, &local, &tracer)?;
    let host_traced_seconds = started.elapsed().as_secs_f64();
    let _ = scale;

    let ratio = |num: f64| {
        if host_plain_seconds > 0.0 {
            num / host_plain_seconds
        } else {
            0.0
        }
    };
    Ok(ObserverEffect {
        workload: w.key.to_owned(),
        abi: abi.to_string(),
        host_plain_seconds,
        host_sampled_seconds,
        host_traced_seconds,
        host_sampling_overhead: ratio(host_sampled_seconds),
        host_tracing_overhead: ratio(host_traced_seconds),
    })
}

/// The human-readable summary table of a report (model throughput per
/// ABI plus the headline host numbers).
pub fn speed_table(report: &BenchReport) -> Table {
    let mut t = Table::new(&[
        "ABI",
        "retired",
        "cycles",
        "sim (s)",
        "host insts/s",
        "host timed/s",
        "sim/host",
    ]);
    for abi in &report.model.abis {
        let rate = report.host.host_abi_rates.iter().find(|r| r.abi == abi.abi);
        t.row(&[
            abi.abi.clone(),
            abi.retired.to_string(),
            abi.cycles.to_string(),
            format!("{:.4}", abi.sim_seconds),
            rate.map_or("-".into(), |r| fmt_metric(r.host_insts_per_sec)),
            rate.map_or("-".into(), |r| fmt_metric(r.host_insts_per_sec_timed)),
            rate.map_or("-".into(), |r| fmt_metric(r.host_sim_ratio)),
        ]);
    }
    t
}

/// One gated model metric's divergence between two reports.
#[derive(Clone, Debug, Serialize)]
pub struct MetricDiff {
    /// Metric path (e.g. `purecap.cycles`, `cache.hit_rate`).
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed percent change from baseline (`100.0` for a metric that
    /// appeared from zero).
    pub pct: f64,
}

/// `bench_compare`'s verdict.
#[derive(Clone, Debug, Serialize)]
pub struct CompareOutcome {
    /// Every gated metric that moved at all.
    pub diffs: Vec<MetricDiff>,
    /// The subset whose |pct| exceeds the threshold (also includes
    /// metrics present in only one report).
    pub regressions: Vec<MetricDiff>,
}

/// The gated metric set: model-section values only (host wall-clock is
/// deliberately invisible to the gate).
pub fn model_metrics(report: &BenchReport) -> Vec<(String, f64)> {
    let mut m = vec![("cache.hit_rate".to_owned(), report.model.cache.hit_rate)];
    for abi in &report.model.abis {
        m.push((format!("{}.retired", abi.abi), abi.retired as f64));
        m.push((format!("{}.cycles", abi.abi), abi.cycles as f64));
        m.push((format!("{}.sim_seconds", abi.abi), abi.sim_seconds));
        for c in &abi.classes {
            m.push((format!("{}.{}.retired", abi.abi, c.class), c.retired as f64));
            m.push((format!("{}.{}.cycles", abi.abi, c.class), c.cycles as f64));
        }
    }
    // Dispatch structure (v2+; a pre-v2 report deserialises to an empty
    // subsection, and the schema gate refuses cross-version diffs
    // before this set is ever compared).
    for d in &report.model.dispatch.abis {
        m.push((format!("{}.dispatch.blocks", d.abi), d.blocks as f64));
        m.push((
            format!("{}.dispatch.interior_ops", d.abi),
            d.interior_ops as f64,
        ));
        m.push((
            format!("{}.dispatch.terminators", d.abi),
            d.terminators as f64,
        ));
    }
    m
}

/// Diffs the model sections of two reports. The model is deterministic,
/// so any movement is a real behaviour change: a metric whose absolute
/// percent change exceeds `threshold_pct` (in either direction, slower
/// or suspiciously faster) lands in `regressions`, as does a metric
/// present in only one report.
pub fn compare(base: &BenchReport, new: &BenchReport, threshold_pct: f64) -> CompareOutcome {
    compare_metric_sets(&model_metrics(base), &model_metrics(new), threshold_pct)
}

/// The generic deterministic-metric gate behind [`compare`]: diffs two
/// named metric sets against a percent threshold. Shared by the
/// `BENCH_interp.json` gate (via [`model_metrics`]) and the
/// `BENCH_service.json` gate (via `morello_serve::service_metrics`).
pub fn compare_metric_sets(
    base_metrics: &[(String, f64)],
    new_metrics: &[(String, f64)],
    threshold_pct: f64,
) -> CompareOutcome {
    let mut diffs = Vec::new();
    let mut regressions = Vec::new();
    for (name, b) in base_metrics {
        let Some((_, n)) = new_metrics.iter().find(|(k, _)| k == name) else {
            regressions.push(MetricDiff {
                metric: format!("{name} (missing from candidate)"),
                base: *b,
                new: 0.0,
                pct: -100.0,
            });
            continue;
        };
        let pct = if *b == 0.0 {
            if *n == 0.0 {
                0.0
            } else {
                100.0
            }
        } else {
            (n - b) / b * 100.0
        };
        if pct != 0.0 {
            let d = MetricDiff {
                metric: name.clone(),
                base: *b,
                new: *n,
                pct,
            };
            if pct.abs() > threshold_pct {
                regressions.push(d.clone());
            }
            diffs.push(d);
        }
    }
    for (name, n) in new_metrics {
        if !base_metrics.iter().any(|(k, _)| k == name) {
            regressions.push(MetricDiff {
                metric: format!("{name} (missing from baseline)"),
                base: 0.0,
                new: *n,
                pct: 100.0,
            });
        }
    }
    CompareOutcome { diffs, regressions }
}

/// The fast-path floor check behind `bench_compare --min-host-rate`:
/// returns every ABI whose engine-leg throughput
/// ([`HostAbiRate::host_insts_per_sec`]) fell below `min` retired
/// instructions per host second. A silent fall-back to the reference
/// executor (or a fast path degraded into per-event sink traffic) drops
/// the engine leg far below any realistic floor, so CI gates on this
/// even though host numbers are otherwise informational.
pub fn host_rate_floor(report: &BenchReport, min: f64) -> Vec<(String, f64)> {
    report
        .host
        .host_abi_rates
        .iter()
        .filter(|r| r.host_insts_per_sec < min)
        .map(|r| (r.abi.clone(), r.host_insts_per_sec))
        .collect()
}

/// Renders a diff list the way `bench_compare` prints it.
pub fn diff_table(diffs: &[MetricDiff]) -> Table {
    let mut t = Table::new(&["metric", "baseline", "candidate", "change %"]);
    for d in diffs {
        t.row(&[
            d.metric.clone(),
            fmt_metric(d.base),
            fmt_metric(d.new),
            format!("{:+.2}", d.pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use morello_sim::NullSpanSink;

    fn quick_report(jobs: usize) -> BenchReport {
        run_bench(true, jobs, &NullSpanSink).expect("quick bench runs")
    }

    #[test]
    fn quick_report_shape_and_model_determinism_across_jobs() {
        let r2 = quick_report(2);
        let r4 = quick_report(4);
        assert_eq!(r2.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(r2.scale, "test");
        assert_eq!(r2.model.workloads.len(), QUICK_KEYS.len());
        assert_eq!(r2.model.abis.len(), 3);
        // Exactly half the lookups hit: sweep 1 lowers, sweep 2 hits.
        assert_eq!(r2.model.cache.misses, r2.model.cache.hits);
        assert!((r2.model.cache.hit_rate - 0.5).abs() < 1e-12);
        for abi in &r2.model.abis {
            let class_retired: u64 = abi.classes.iter().map(|c| c.retired).sum();
            let class_cycles: u64 = abi.classes.iter().map(|c| c.cycles).sum();
            assert_eq!(class_retired, abi.retired, "{}: classes partition", abi.abi);
            assert_eq!(class_cycles, abi.cycles, "{}: cycles partition", abi.abi);
        }
        // v2 dispatch subsection: one row per ABI, histogram buckets
        // partition the block count, interiors + terminators tile the
        // lowered ops.
        assert_eq!(r2.model.dispatch.mode, DISPATCH_MODE);
        assert_eq!(r2.model.dispatch.abis.len(), 3);
        for d in &r2.model.dispatch.abis {
            assert!(d.blocks > 0, "{}: selection decodes to blocks", d.abi);
            assert!(d.interior_ops > 0 && d.terminators > 0);
            assert_eq!(
                d.size_hist.iter().sum::<u64>(),
                d.blocks,
                "{}: size_hist buckets partition the block count",
                d.abi
            );
            assert_eq!(d.blocks, d.terminators + d.fallthrough_blocks);
        }
        // The gated section is byte-identical regardless of --jobs.
        let m2 = serde_json::to_string(&r2.model).unwrap();
        let m4 = serde_json::to_string(&r4.model).unwrap();
        assert_eq!(m2, m4, "model section must not depend on --jobs");
        // Host sections exist but are not compared.
        assert!(r2.host.host_wall_seconds_jobs1 > 0.0);
        for rate in &r2.host.host_abi_rates {
            assert!(
                rate.host_insts_per_sec > 0.0 && rate.host_insts_per_sec_timed > 0.0,
                "{}: both throughput legs must be measured",
                rate.abi
            );
        }
        assert_eq!(compare(&r2, &r4, 0.0).regressions.len(), 0);
    }

    #[test]
    fn parallel_speedup_exceeds_one_on_multicore() {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        if jobs < 2 {
            // Single-CPU host: the pool clamps both sweeps to one
            // worker running the identical serial schedule, so the
            // ratio is 1.0 ± wall-clock noise and asserting on it
            // would only test the noise floor (see
            // `HostSection::host_parallel_speedup`).
            eprintln!("parallel_speedup_exceeds_one_on_multicore: skipped (1 CPU)");
            return;
        }
        let workloads = select(&TABLE3_KEYS);
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let cache = ProgramCache::new();
        // Warm the lowered-program cache so both timed sweeps below
        // are execution-only and differ by worker count alone.
        run_suite_traced(
            &runner,
            &workloads,
            &cache,
            &SuiteConfig::with_jobs(jobs),
            None,
            &NullSpanSink,
        )
        .expect("warm sweep runs");
        let best_of = |j: usize| {
            (0..3)
                .map(|_| {
                    let started = Instant::now();
                    run_suite_traced(
                        &runner,
                        &workloads,
                        &cache,
                        &SuiteConfig::with_jobs(j),
                        None,
                        &NullSpanSink,
                    )
                    .expect("timed sweep runs");
                    started.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let serial = best_of(1);
        let parallel = best_of(jobs);
        assert!(
            serial / parallel > 1.0,
            "full-matrix warm speedup at jobs={jobs} was {:.3} (serial {serial:.3}s, parallel {parallel:.3}s)",
            serial / parallel
        );
    }

    #[test]
    fn compare_flags_injected_regression() {
        let base = quick_report(2);
        let mut slow = base.clone();
        // Inject a 20% cycle regression on one ABI — past a 10% gate.
        slow.model.abis[2].cycles = slow.model.abis[2].cycles * 12 / 10;
        let outcome = compare(&base, &slow, 10.0);
        assert!(
            outcome
                .regressions
                .iter()
                .any(|d| d.metric.ends_with(".cycles") && d.pct > 10.0),
            "20% cycle growth must trip a 10% gate: {:?}",
            outcome.regressions
        );
        // The same pair passes a looser gate but still shows the diff.
        let loose = compare(&base, &slow, 50.0);
        assert!(loose.regressions.is_empty());
        assert!(!loose.diffs.is_empty());
        // Identical reports are clean at any threshold.
        let clean = compare(&base, &base, 0.0);
        assert!(clean.diffs.is_empty() && clean.regressions.is_empty());
    }
}
