//! Property tests for tagged memory and the allocator: tag hygiene under
//! arbitrary interleavings of data and capability traffic, and allocator
//! safety invariants under arbitrary malloc/free sequences.

use cheri_cap::Capability;
use cheri_mem::{AllocMode, HeapAllocator, TaggedMemory, CAP_GRANULE};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Data written is data read back, across arbitrary offsets/lengths
    /// (including page-straddling), against a mirror model.
    #[test]
    fn read_write_matches_mirror(
        writes in proptest::collection::vec(
            ((0u64..(1 << 16)), proptest::collection::vec(any::<u8>(), 1..64)),
            1..64
        )
    ) {
        let mut mem = TaggedMemory::new();
        let mut mirror: HashMap<u64, u8> = HashMap::new();
        for (addr, bytes) in &writes {
            mem.write_bytes(*addr, bytes).unwrap();
            for (i, b) in bytes.iter().enumerate() {
                mirror.insert(addr + i as u64, *b);
            }
        }
        for (addr, bytes) in &writes {
            let mut buf = vec![0u8; bytes.len()];
            mem.read_bytes(*addr, &mut buf).unwrap();
            for (i, b) in buf.iter().enumerate() {
                prop_assert_eq!(*b, *mirror.get(&(addr + i as u64)).unwrap());
            }
        }
    }

    /// Tag hygiene: a capability survives round-trips unless plain data
    /// overlapped its granule, in which case the tag is gone — never the
    /// other way around.
    #[test]
    fn tag_cleared_iff_overlapped(
        cap_at in (0u64..256).prop_map(|s| s * CAP_GRANULE),
        data_at in 0u64..(256 * CAP_GRANULE),
        data_len in 1u64..48,
    ) {
        let mut mem = TaggedMemory::new();
        let cap = Capability::root_rw().set_bounds_exact(0x8000, 128).unwrap();
        mem.store_cap(cap_at, cap.to_compressed(), true).unwrap();
        let data = vec![0xA5u8; data_len as usize];
        mem.write_bytes(data_at, &data).unwrap();
        let (_, tag) = mem.load_cap(cap_at).unwrap();
        let overlap = data_at < cap_at + CAP_GRANULE && data_at + data_len > cap_at;
        prop_assert_eq!(tag, !overlap, "cap at {:#x}, data [{:#x}; {})", cap_at, data_at, data_len);
    }

    /// Capability stores only ever set the tag of their own granule.
    #[test]
    fn cap_store_is_granule_local(slots in proptest::collection::vec(0u64..64, 1..16)) {
        let mut mem = TaggedMemory::new();
        let cap = Capability::root_rw().set_bounds_exact(0x1000, 64).unwrap();
        for s in &slots {
            mem.store_cap(s * CAP_GRANULE, cap.to_compressed(), true).unwrap();
        }
        for g in 0..64u64 {
            let expect = slots.contains(&g);
            prop_assert_eq!(mem.peek_tag(g * CAP_GRANULE), expect);
        }
    }

    /// Allocator safety under arbitrary malloc/free traces: no live block
    /// overlap, bounds always representable (capability mode), and no
    /// immediate temporal reuse.
    #[test]
    fn allocator_trace_invariants(
        trace in proptest::collection::vec((any::<bool>(), 1u64..20000), 1..200),
        cap_mode in any::<bool>(),
    ) {
        let mode = if cap_mode { AllocMode::Capability } else { AllocMode::Classic };
        let mut h = HeapAllocator::new(0x1000_0000, 0x4000_0000, mode);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let root = Capability::root_rw();
        for (do_free, size) in trace {
            if do_free && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                h.free(addr).unwrap();
                // Double free must be rejected.
                prop_assert!(h.free(addr).is_err());
                if cap_mode {
                    // Temporal safety: the very next allocation of the
                    // same size must not reuse this address.
                    let again = h.malloc(8).unwrap();
                    prop_assert_ne!(again.addr, addr);
                    h.free(again.addr).unwrap();
                }
            } else {
                let a = h.malloc(size).unwrap();
                prop_assert!(a.padded >= size);
                if cap_mode {
                    prop_assert!(
                        root.set_bounds_exact(a.addr, a.padded).is_ok(),
                        "bounds must be exactly representable: {:?}", a
                    );
                }
                // No overlap with any live block.
                for (b, len) in &live {
                    let disjoint = a.addr + a.padded <= *b || b + len <= a.addr;
                    prop_assert!(disjoint, "overlap: {:?} vs ({:#x}, {})", a, b, len);
                }
                live.push((a.addr, a.padded));
            }
        }
        // Bookkeeping agrees.
        prop_assert_eq!(h.live_count(), live.len());
        let expect_live: u64 = live.iter().map(|(_, l)| l).sum();
        prop_assert_eq!(h.stats().live_bytes, expect_live);
    }
}
