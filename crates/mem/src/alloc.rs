//! A CHERI-aware heap allocator model.

use cheri_cap::{representable_alignment, round_representable_length};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The allocation discipline in force.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocMode {
    /// Classic `malloc`: 16-byte alignment, size rounded to the size class
    /// only. Used by the hybrid ABI.
    Classic,
    /// CHERI-aware `malloc`: additionally pads the block to a
    /// representable length and aligns the base so exact capability bounds
    /// can be handed out. Used by the purecap and benchmark ABIs.
    Capability,
}

/// The result of a successful allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Base address of the block.
    pub addr: u64,
    /// The caller-visible size (requested size rounded to the size class).
    pub usable: u64,
    /// The reserved size including representability padding
    /// (`padded >= usable`).
    pub padded: u64,
}

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// The arena is exhausted.
    OutOfMemory {
        /// The request that failed, in bytes.
        requested: u64,
    },
    /// `free` of an address that is not a live allocation base.
    InvalidFree {
        /// The bogus address.
        addr: u64,
    },
    /// `free` of a block that is already sitting in the temporal-safety
    /// quarantine — a double free, as opposed to a wild free of an address
    /// the allocator never handed out.
    DoubleFreeQuarantined {
        /// Base address of the quarantined block.
        addr: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "heap arena exhausted allocating {requested} bytes")
            }
            AllocError::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            AllocError::DoubleFreeQuarantined { addr } => {
                write!(f, "double free of quarantined block {addr:#x}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Cumulative allocator statistics.
///
/// `padding_bytes` isolates the purecap-specific overhead: bytes reserved
/// purely to satisfy capability representability, the "utilized memory"
/// growth the paper reports for QuickJS (§4.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Number of `malloc` calls.
    pub total_allocs: u64,
    /// Number of `free` calls.
    pub total_frees: u64,
    /// Sum of caller-requested bytes.
    pub requested_bytes: u64,
    /// Currently live (not freed) reserved bytes.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
    /// Bytes reserved beyond the size class for representability.
    pub padding_bytes: u64,
    /// Arena high-water mark (bytes of address space consumed).
    pub arena_used: u64,
    /// Bytes currently parked in the temporal-safety quarantine.
    #[serde(default)]
    pub quarantine_bytes: u64,
    /// Blocks currently parked in the temporal-safety quarantine.
    #[serde(default)]
    pub quarantine_blocks: u64,
    /// High-water mark of `quarantine_bytes`.
    #[serde(default)]
    pub quarantine_bytes_hwm: u64,
    /// High-water mark of `quarantine_blocks`.
    #[serde(default)]
    pub quarantine_blocks_hwm: u64,
    /// Revocation epochs triggered (quarantine drains / tag sweeps).
    #[serde(default)]
    pub revocation_epochs: u64,
    /// Capability granules visited by revocation tag sweeps (populated by
    /// the `cheri-revoke` epoch engine; always 0 for the plain allocator).
    #[serde(default)]
    pub sweep_granules_visited: u64,
    /// Capability tags cleared by revocation tag sweeps (populated by the
    /// `cheri-revoke` epoch engine; always 0 for the plain allocator).
    #[serde(default)]
    pub sweep_tags_cleared: u64,
}

/// A size-class heap allocator over a fixed arena, with optional CHERI
/// representability padding.
///
/// Freed blocks are recycled per padded-size free lists, so address reuse
/// behaves like a real `malloc` — which matters for the cache model
/// downstream.
#[derive(Debug)]
pub struct HeapAllocator {
    mode: AllocMode,
    start: u64,
    end: u64,
    bump: u64,
    free_lists: HashMap<u64, Vec<u64>>,
    live: HashMap<u64, Allocation>,
    /// Temporal-safety quarantine (capability mode only): freed blocks are
    /// parked here and only become reusable once the quarantine exceeds
    /// [`QUARANTINE_BLOCKS`] — the Cornucopia-style revocation epoch. This
    /// is why purecap heaps of churning workloads spread over more memory.
    quarantine: std::collections::VecDeque<(u64, u64)>,
    stats: HeapStats,
}

/// Blocks held in quarantine before a revocation epoch recycles them.
const QUARANTINE_BLOCKS: usize = 256;

impl HeapAllocator {
    /// Creates an allocator over the arena `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not 16-byte aligned or `end <= start`.
    pub fn new(start: u64, end: u64, mode: AllocMode) -> HeapAllocator {
        assert!(
            start.is_multiple_of(16),
            "arena start must be 16-byte aligned"
        );
        assert!(end > start, "empty arena");
        HeapAllocator {
            mode,
            start,
            end,
            bump: start,
            free_lists: HashMap::new(),
            live: HashMap::new(),
            quarantine: std::collections::VecDeque::new(),
            stats: HeapStats::default(),
        }
    }

    /// The allocation discipline.
    pub fn mode(&self) -> AllocMode {
        self.mode
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Rounds a request up to its size class (16-byte granules below 1 KiB,
    /// 64-byte granules below 8 KiB, pages above).
    pub fn size_class(size: u64) -> u64 {
        let size = size.max(1);
        if size <= 1024 {
            (size + 15) & !15
        } else if size <= 8192 {
            (size + 63) & !63
        } else {
            (size + 4095) & !4095
        }
    }

    /// Allocates `size` bytes.
    ///
    /// In [`AllocMode::Capability`] the reserved block is padded to a
    /// representable length and its base aligned per the compressed-bounds
    /// contract, so `cap.set_bounds_exact(alloc.addr, alloc.padded)` always
    /// succeeds.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the arena is exhausted.
    pub fn malloc(&mut self, size: u64) -> Result<Allocation, AllocError> {
        let usable = Self::size_class(size);
        let (padded, align) = match self.mode {
            AllocMode::Classic => (usable, 16),
            AllocMode::Capability => {
                let padded = round_representable_length(usable);
                let align = representable_alignment(padded).max(16);
                (padded, align)
            }
        };

        let addr = if let Some(list) = self.free_lists.get_mut(&padded) {
            list.pop()
        } else {
            None
        };
        let addr = match addr {
            Some(a) => a,
            None => {
                let base = (self.bump + align - 1) & !(align - 1);
                let next = base
                    .checked_add(padded)
                    .ok_or(AllocError::OutOfMemory { requested: size })?;
                if next > self.end {
                    return Err(AllocError::OutOfMemory { requested: size });
                }
                self.bump = next;
                self.stats.arena_used = self.bump - self.start;
                base
            }
        };

        let alloc = Allocation {
            addr,
            usable,
            padded,
        };
        self.live.insert(addr, alloc);
        self.stats.total_allocs += 1;
        self.stats.requested_bytes += size;
        self.stats.live_bytes += padded;
        self.stats.padding_bytes += padded - usable;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        Ok(alloc)
    }

    /// Releases a block previously returned by
    /// [`malloc`](HeapAllocator::malloc).
    ///
    /// # Errors
    ///
    /// [`AllocError::DoubleFreeQuarantined`] when `addr` is a block still
    /// sitting in the quarantine (a double free);
    /// [`AllocError::InvalidFree`] when `addr` is not a live allocation
    /// base at all (a wild free, or a double free of a long-recycled
    /// block).
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        let alloc = match self.live.remove(&addr) {
            Some(a) => a,
            None if self.quarantine.iter().any(|&(a, _)| a == addr) => {
                return Err(AllocError::DoubleFreeQuarantined { addr });
            }
            None => return Err(AllocError::InvalidFree { addr }),
        };
        self.stats.total_frees += 1;
        self.stats.live_bytes -= alloc.padded;
        match self.mode {
            AllocMode::Classic => {
                self.free_lists.entry(alloc.padded).or_default().push(addr);
            }
            AllocMode::Capability => {
                // Temporal safety: the block stays unreusable until a
                // revocation epoch has scanned for stale capabilities.
                self.quarantine.push_back((addr, alloc.padded));
                self.stats.quarantine_bytes += alloc.padded;
                self.stats.quarantine_blocks += 1;
                self.stats.quarantine_bytes_hwm = self
                    .stats
                    .quarantine_bytes_hwm
                    .max(self.stats.quarantine_bytes);
                self.stats.quarantine_blocks_hwm = self
                    .stats
                    .quarantine_blocks_hwm
                    .max(self.stats.quarantine_blocks);
                if self.quarantine.len() > QUARANTINE_BLOCKS {
                    self.stats.revocation_epochs += 1;
                    for _ in 0..QUARANTINE_BLOCKS / 2 {
                        if let Some((a, sz)) = self.quarantine.pop_front() {
                            self.stats.quarantine_bytes -= sz;
                            self.stats.quarantine_blocks -= 1;
                            self.free_lists.entry(sz).or_default().push(a);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of currently live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::Capability;

    fn cap_heap() -> HeapAllocator {
        HeapAllocator::new(0x4000_0000, 0x5000_0000, AllocMode::Capability)
    }

    #[test]
    fn size_classes() {
        assert_eq!(HeapAllocator::size_class(0), 16);
        assert_eq!(HeapAllocator::size_class(1), 16);
        assert_eq!(HeapAllocator::size_class(16), 16);
        assert_eq!(HeapAllocator::size_class(17), 32);
        assert_eq!(HeapAllocator::size_class(1025), 1088);
        assert_eq!(HeapAllocator::size_class(10_000), 12_288);
    }

    #[test]
    fn classic_mode_never_pads() {
        let mut h = HeapAllocator::new(0x1000, 0x10_0000, AllocMode::Classic);
        let a = h.malloc(100_000 - 60_000).unwrap(); // 40000 -> page rounded
        assert_eq!(a.usable, a.padded);
        assert_eq!(h.stats().padding_bytes, 0);
    }

    #[test]
    fn capability_mode_allocations_take_exact_bounds() {
        let mut h = cap_heap();
        let root = Capability::root_rw();
        for size in [1u64, 16, 100, 4097, 70_000, 1 << 20, (1 << 20) + 1] {
            let a = h.malloc(size).unwrap();
            assert!(a.padded >= size);
            let c = root.set_bounds_exact(a.addr, a.padded);
            assert!(c.is_ok(), "size={size} alloc={a:?}: {c:?}");
        }
    }

    #[test]
    fn capability_padding_only_for_large_blocks() {
        let mut h = cap_heap();
        let small = h.malloc(100).unwrap();
        assert_eq!(small.padded, small.usable);
        // Below 4 MiB the representability granule (<= 2 KiB) divides the
        // page-rounded size class, so no padding appears.
        let medium = h.malloc((1 << 20) + 1).unwrap();
        assert_eq!(medium.padded, medium.usable);
        // Above 4 MiB the granule exceeds a page and padding kicks in.
        let large = h.malloc((4 << 20) + 1).unwrap();
        assert!(large.padded > large.usable);
        assert!(h.stats().padding_bytes > 0);
    }

    #[test]
    fn classic_free_list_reuse_is_immediate() {
        let mut h = HeapAllocator::new(0x1000, 0x100_0000, AllocMode::Classic);
        let a = h.malloc(64).unwrap();
        h.free(a.addr).unwrap();
        let b = h.malloc(64).unwrap();
        assert_eq!(a.addr, b.addr, "freed block must be recycled");
    }

    #[test]
    fn capability_free_quarantines_before_reuse() {
        let mut h = cap_heap();
        let a = h.malloc(64).unwrap();
        h.free(a.addr).unwrap();
        let b = h.malloc(64).unwrap();
        assert_ne!(
            a.addr, b.addr,
            "temporal safety must quarantine freed blocks"
        );
        // After enough frees a revocation epoch recycles quarantined
        // blocks.
        let mut addrs = Vec::new();
        for _ in 0..600 {
            let x = h.malloc(64).unwrap();
            addrs.push(x.addr);
            h.free(x.addr).unwrap();
        }
        let recycled = addrs.windows(2).any(|w| w[0] == w[1]) || addrs.contains(&a.addr);
        assert!(recycled, "quarantine must eventually drain");
    }

    #[test]
    fn double_free_rejected() {
        let mut h = cap_heap();
        let a = h.malloc(64).unwrap();
        h.free(a.addr).unwrap();
        // Regression: a double free of a *quarantined* block must be
        // diagnosed as such, not as a generic wild free.
        assert_eq!(
            h.free(a.addr).unwrap_err(),
            AllocError::DoubleFreeQuarantined { addr: a.addr }
        );
        // A wild free stays the generic error.
        assert_eq!(
            h.free(0xdea0).unwrap_err(),
            AllocError::InvalidFree { addr: 0xdea0 }
        );
        // Classic mode recycles immediately, so its double free is a plain
        // invalid free (the block is back on the free list).
        let mut c = HeapAllocator::new(0x1000, 0x10_0000, AllocMode::Classic);
        let b = c.malloc(64).unwrap();
        c.free(b.addr).unwrap();
        assert_eq!(
            c.free(b.addr).unwrap_err(),
            AllocError::InvalidFree { addr: b.addr }
        );
    }

    #[test]
    fn quarantine_occupancy_tracked() {
        let mut h = cap_heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        h.free(a.addr).unwrap();
        h.free(b.addr).unwrap();
        let s = h.stats();
        assert_eq!(s.quarantine_blocks, 2);
        assert_eq!(s.quarantine_bytes, a.padded + b.padded);
        assert_eq!(s.quarantine_blocks_hwm, 2);
        assert_eq!(s.revocation_epochs, 0);
        // Push past the epoch threshold and check the drain is accounted.
        for _ in 0..600 {
            let x = h.malloc(64).unwrap();
            h.free(x.addr).unwrap();
        }
        let s = h.stats();
        assert!(s.revocation_epochs > 0, "epochs must trigger: {s:?}");
        assert!(s.quarantine_blocks <= QUARANTINE_BLOCKS as u64 + 1);
        assert!(s.quarantine_blocks_hwm > s.quarantine_blocks / 2);
    }

    #[test]
    fn out_of_memory() {
        let mut h = HeapAllocator::new(0x1000, 0x2000, AllocMode::Classic);
        assert!(h.malloc(2048).is_ok());
        assert!(matches!(
            h.malloc(8192),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn stats_track_live_and_peak() {
        let mut h = cap_heap();
        let a = h.malloc(1000).unwrap();
        let b = h.malloc(2000).unwrap();
        let peak = h.stats().live_bytes;
        h.free(a.addr).unwrap();
        assert!(h.stats().live_bytes < peak);
        assert_eq!(h.stats().peak_live_bytes, peak);
        h.free(b.addr).unwrap();
        assert_eq!(h.stats().live_bytes, 0);
        assert_eq!(h.live_count(), 0);
        assert_eq!(h.stats().total_allocs, 2);
        assert_eq!(h.stats().total_frees, 2);
    }

    #[test]
    fn capability_mode_uses_more_arena_than_classic() {
        // The footprint-growth mechanism: identical allocation sequences
        // consume more address space under the capability discipline.
        let mut classic = HeapAllocator::new(0x1000_0000, 0x8000_0000, AllocMode::Classic);
        let mut capab = HeapAllocator::new(0x1000_0000, 0x8000_0000, AllocMode::Capability);
        for i in 0..200u64 {
            let sz = 5000 + i * 977; // odd sizes above the exact threshold
            classic.malloc(sz).unwrap();
            capab.malloc(sz).unwrap();
        }
        assert!(capab.stats().arena_used > classic.stats().arena_used);
    }
}
