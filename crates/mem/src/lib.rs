//! # cheri-mem
//!
//! The memory substrate of the Morello model: a sparse, paged, **tagged**
//! memory in which every aligned 16-byte granule carries an out-of-band
//! capability-validity tag, plus a CHERI-aware heap allocator and footprint
//! accounting.
//!
//! Tags are the hardware root of CHERI's unforgeability: a capability can
//! only be loaded with its tag set if it was stored as a capability, and
//! any plain-data store to its granule clears the tag
//! ([`TaggedMemory::write_bytes`]).
//!
//! The [`HeapAllocator`] models the two allocator disciplines the paper's
//! binaries used: classic 16-byte-aligned `malloc` (hybrid ABI) and a
//! capability allocator that pads and aligns large allocations so their
//! bounds are representable in the compressed encoding (purecap ABIs). The
//! padding/alignment difference is the mechanism behind the paper's
//! observations about memory footprint growth — and behind the counter-
//! intuitive `519.lbm_r` speed-up, where purecap's coarser alignment
//! changes cache-conflict behaviour.
//!
//! ```
//! use cheri_mem::{TaggedMemory, HeapAllocator, AllocMode};
//!
//! let mut mem = TaggedMemory::new();
//! mem.write_u64(0x1000, 0xdead_beef).unwrap();
//! assert_eq!(mem.read_u64(0x1000).unwrap(), 0xdead_beef);
//!
//! let mut heap = HeapAllocator::new(0x4000_0000, 0x8000_0000, AllocMode::Capability);
//! let a = heap.malloc(100).unwrap();
//! assert_eq!(a.addr % 16, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod tagged;

pub use alloc::{AllocError, AllocMode, Allocation, HeapAllocator, HeapStats};
pub use tagged::{MemError, MemStats, TaggedMemory, CAP_GRANULE, PAGE_SIZE};
