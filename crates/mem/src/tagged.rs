//! Sparse paged memory with out-of-band capability tags.

use cheri_cap::CompressedCap;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Page size in bytes (4 KiB, matching CheriBSD's base page size).
pub const PAGE_SIZE: u64 = 4096;
/// Capability granule: one tag bit protects each aligned 16-byte region.
pub const CAP_GRANULE: u64 = 16;

const PAGE_SHIFT: u32 = 12;
const GRANULES_PER_PAGE: usize = (PAGE_SIZE / CAP_GRANULE) as usize; // 256
const TAG_WORDS: usize = GRANULES_PER_PAGE / 64; // 4

/// An access error raised by the functional memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// Capability loads/stores must be 16-byte aligned.
    UnalignedCapAccess {
        /// The faulting address.
        addr: u64,
    },
    /// The access would wrap around the top of the address space.
    AddressWrap {
        /// The faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::UnalignedCapAccess { addr } => {
                write!(f, "unaligned capability access at {addr:#x}")
            }
            MemError::AddressWrap { addr } => write!(f, "address wrap at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Functional access statistics (architectural counts, not timing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Plain-data read operations.
    pub data_reads: u64,
    /// Plain-data write operations.
    pub data_writes: u64,
    /// Bytes read by plain-data operations.
    pub bytes_read: u64,
    /// Bytes written by plain-data operations.
    pub bytes_written: u64,
    /// Capability (16-byte, tag-carrying) loads.
    pub cap_reads: u64,
    /// Capability (16-byte, tag-carrying) stores.
    pub cap_writes: u64,
    /// Tags cleared by plain-data overwrites of capability granules.
    pub tags_cleared_by_data: u64,
}

struct Page {
    data: Box<[u8]>,
    tags: [u64; TAG_WORDS],
}

impl Page {
    fn new() -> Page {
        Page {
            data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            tags: [0; TAG_WORDS],
        }
    }

    #[inline]
    fn tag(&self, granule: usize) -> bool {
        (self.tags[granule / 64] >> (granule % 64)) & 1 == 1
    }

    #[inline]
    fn set_tag(&mut self, granule: usize, value: bool) {
        let (w, b) = (granule / 64, granule % 64);
        if value {
            self.tags[w] |= 1 << b;
        } else {
            self.tags[w] &= !(1 << b);
        }
    }
}

/// A multiplicative hasher for page numbers. Every functional access
/// hashes a page key, and the default SipHash dominates that path; page
/// numbers are small and well-spread, so a Fibonacci multiply (plus a
/// shift to fold the high bits the map's bucket index ignores) is
/// enough. Nothing observable depends on map iteration order: sweep
/// accessors sort, and `revoke_region` computes order-independent sums.
#[derive(Clone, Copy, Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

/// Ways in the direct-mapped page-translation cache. Covers the few
/// hot streams an interpreter touches between page changes (stack,
/// a couple of heap arrays, globals) without a hash probe per access.
const PAGE_CACHE_WAYS: usize = 8;

/// Cache-way sentinel: no page number hashes to `u64::MAX` in practice
/// (it would require an address at the top of the space).
const NO_PAGE: u64 = u64::MAX;

/// A sparse, paged, tagged physical memory.
///
/// Pages are materialised on first touch; the number of touched pages is
/// the process's memory footprint (the paper's "memory footprint"
/// metric in §4.4).
///
/// Internally pages live in a slot arena (`pages`) with a hash index
/// from page number to slot and a small direct-mapped cache in front:
/// the hot path of every scalar access is a one-way tag compare plus a
/// vector index, with the hash probe paid only on cache misses.
pub struct TaggedMemory {
    pages: Vec<Page>,
    index: HashMap<u64, u32, BuildHasherDefault<PageHasher>>,
    cache: [(u64, u32); PAGE_CACHE_WAYS],
    stats: MemStats,
}

impl Default for TaggedMemory {
    fn default() -> TaggedMemory {
        TaggedMemory {
            pages: Vec::new(),
            index: HashMap::default(),
            cache: [(NO_PAGE, 0); PAGE_CACHE_WAYS],
            stats: MemStats::default(),
        }
    }
}

impl TaggedMemory {
    /// Creates an empty memory.
    pub fn new() -> TaggedMemory {
        TaggedMemory::default()
    }

    /// Access statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Number of distinct pages touched (reads or writes).
    pub fn pages_touched(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total footprint in bytes (touched pages × page size).
    pub fn footprint_bytes(&self) -> u64 {
        self.pages_touched() * PAGE_SIZE
    }

    #[inline]
    fn page_mut(&mut self, page_no: u64) -> &mut Page {
        let way = (page_no as usize) & (PAGE_CACHE_WAYS - 1);
        let (tag, slot) = self.cache[way];
        if tag == page_no {
            return &mut self.pages[slot as usize];
        }
        self.page_mut_miss(page_no, way)
    }

    fn page_mut_miss(&mut self, page_no: u64, way: usize) -> &mut Page {
        let slot = match self.index.entry(page_no) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let s = self.pages.len() as u32;
                self.pages.push(Page::new());
                *e.insert(s)
            }
        };
        self.cache[way] = (page_no, slot);
        &mut self.pages[slot as usize]
    }

    fn end_addr(addr: u64, len: u64) -> Result<u64, MemError> {
        addr.checked_add(len).ok_or(MemError::AddressWrap { addr })
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails only when the range wraps the address space.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        Self::end_addr(addr, buf.len() as u64)?;
        self.stats.data_reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        // Scalar accesses almost never straddle a page: resolve the page
        // once and copy directly. Empty accesses take the general loop,
        // which touches no page at all.
        let in_page = (addr & (PAGE_SIZE - 1)) as usize;
        if !buf.is_empty() && in_page + buf.len() <= PAGE_SIZE as usize {
            let page = self.page_mut(addr >> PAGE_SHIFT);
            buf.copy_from_slice(&page.data[in_page..in_page + buf.len()]);
            return Ok(());
        }
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page_no = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE - 1)) as usize;
            let n = (buf.len() - off).min(PAGE_SIZE as usize - in_page);
            let page = self.page_mut(page_no);
            buf[off..off + n].copy_from_slice(&page.data[in_page..in_page + n]);
            off += n;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`, clearing the capability tag of
    /// every overlapped 16-byte granule (the CHERI tag-invalidation rule).
    ///
    /// # Errors
    ///
    /// Fails only when the range wraps the address space.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let end = Self::end_addr(addr, buf.len() as u64)?;
        self.stats.data_writes += 1;
        self.stats.bytes_written += buf.len() as u64;
        // Single-page fast path: the data write and the tag-invalidation
        // walk share one page resolution. The granule range of a
        // single-page write starts at or after the page base, so every
        // cleared tag lives on this page.
        let in_page = (addr & (PAGE_SIZE - 1)) as usize;
        if !buf.is_empty() && in_page + buf.len() <= PAGE_SIZE as usize {
            let mut cleared = 0u64;
            let page = self.page_mut(addr >> PAGE_SHIFT);
            page.data[in_page..in_page + buf.len()].copy_from_slice(buf);
            let mut g = addr & !(CAP_GRANULE - 1);
            while g < end {
                let gi = ((g & (PAGE_SIZE - 1)) / CAP_GRANULE) as usize;
                if page.tag(gi) {
                    page.set_tag(gi, false);
                    cleared += 1;
                }
                g += CAP_GRANULE;
            }
            self.stats.tags_cleared_by_data += cleared;
            return Ok(());
        }
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page_no = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE - 1)) as usize;
            let n = (buf.len() - off).min(PAGE_SIZE as usize - in_page);
            let page = self.page_mut(page_no);
            page.data[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            off += n;
        }
        // Clear tags over [addr & !15, end) granule range.
        let first_granule = addr & !(CAP_GRANULE - 1);
        let mut g = first_granule;
        while g < end {
            let page_no = g >> PAGE_SHIFT;
            let gi = ((g & (PAGE_SIZE - 1)) / CAP_GRANULE) as usize;
            let page = self.page_mut(page_no);
            if page.tag(gi) {
                page.set_tag(gi, false);
                self.stats.tags_cleared_by_data += 1;
            }
            g += CAP_GRANULE;
        }
        Ok(())
    }

    /// Loads a capability (16 bytes + tag) from a 16-byte-aligned address.
    ///
    /// # Errors
    ///
    /// [`MemError::UnalignedCapAccess`] when `addr` is not 16-byte aligned.
    pub fn load_cap(&mut self, addr: u64) -> Result<(CompressedCap, bool), MemError> {
        if !addr.is_multiple_of(CAP_GRANULE) {
            return Err(MemError::UnalignedCapAccess { addr });
        }
        self.stats.cap_reads += 1;
        let page_no = addr >> PAGE_SHIFT;
        let in_page = (addr & (PAGE_SIZE - 1)) as usize;
        let gi = in_page / CAP_GRANULE as usize;
        let page = self.page_mut(page_no);
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&page.data[in_page..in_page + 16]);
        Ok((CompressedCap::from_bytes(bytes), page.tag(gi)))
    }

    /// Stores a capability (16 bytes + tag) to a 16-byte-aligned address.
    ///
    /// # Errors
    ///
    /// [`MemError::UnalignedCapAccess`] when `addr` is not 16-byte aligned.
    pub fn store_cap(&mut self, addr: u64, cc: CompressedCap, tag: bool) -> Result<(), MemError> {
        if !addr.is_multiple_of(CAP_GRANULE) {
            return Err(MemError::UnalignedCapAccess { addr });
        }
        self.stats.cap_writes += 1;
        let page_no = addr >> PAGE_SHIFT;
        let in_page = (addr & (PAGE_SIZE - 1)) as usize;
        let gi = in_page / CAP_GRANULE as usize;
        let page = self.page_mut(page_no);
        page.data[in_page..in_page + 16].copy_from_slice(&cc.to_bytes());
        page.set_tag(gi, tag);
        Ok(())
    }

    /// Reads the tag bit of the granule containing `addr` without touching
    /// data (used by tag-scanning revocation models).
    pub fn peek_tag(&mut self, addr: u64) -> bool {
        let page_no = addr >> PAGE_SHIFT;
        let gi = ((addr & (PAGE_SIZE - 1)) / CAP_GRANULE) as usize;
        self.page_mut(page_no).tag(gi)
    }

    /// A revocation sweep (Cornucopia): scans every tagged granule in
    /// memory and clears the tag of each stored capability whose *base*
    /// points into `[base, top)` — invalidating all stale references to a
    /// freed region. Returns the number of capabilities revoked and the
    /// number of granules scanned.
    ///
    /// This is the eager form of what CheriBSD performs with load barriers
    /// across an epoch; the allocator's quarantine models its amortised
    /// cost, while this method provides the architectural effect for
    /// temporal-safety experiments.
    pub fn revoke_region(&mut self, base: u64, top: u64) -> (u64, u64) {
        use cheri_cap::Capability;
        let mut revoked = 0;
        let mut scanned = 0;
        for page in &mut self.pages {
            for w in 0..TAG_WORDS {
                let mut bits = page.tags[w];
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    scanned += 1;
                    let gi = w * 64 + bit;
                    let off = gi * CAP_GRANULE as usize;
                    let mut img = [0u8; 16];
                    img.copy_from_slice(&page.data[off..off + 16]);
                    let cap = Capability::from_compressed(CompressedCap::from_bytes(img), true);
                    if cap.base() >= base && cap.base() < top {
                        page.set_tag(gi, false);
                        revoked += 1;
                    }
                }
            }
        }
        (revoked, scanned)
    }

    // -- Sweep support (used by the `cheri-revoke` epoch engine) -----------

    /// Base addresses of the materialised pages intersecting `[lo, hi)`,
    /// in ascending order (the deterministic page walk a revocation sweep
    /// performs). Untouched pages hold no tags and are skipped, exactly
    /// like CheriBSD's revoker skips unmapped ranges.
    pub fn touched_pages_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let lo_page = lo >> PAGE_SHIFT;
        let hi_page = hi.saturating_add(PAGE_SIZE - 1) >> PAGE_SHIFT;
        let mut pages: Vec<u64> = self
            .index
            .keys()
            .copied()
            .filter(|p| *p >= lo_page && *p < hi_page)
            .map(|p| p << PAGE_SHIFT)
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Addresses of every tagged (capability-holding) granule in
    /// `[lo, hi)`, in ascending order.
    pub fn tagged_granules_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for page_base in self.touched_pages_in(lo, hi) {
            let page = &self.pages[self.index[&(page_base >> PAGE_SHIFT)] as usize];
            for w in 0..TAG_WORDS {
                let mut bits = page.tags[w];
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let addr = page_base + ((w * 64 + bit) as u64) * CAP_GRANULE;
                    if addr >= lo && addr < hi {
                        out.push(addr);
                    }
                }
            }
        }
        out
    }

    /// Reads the capability image and tag of the granule containing
    /// `addr` without materialising pages or counting an access (a
    /// revoker-side inspection, not an architectural load). Returns
    /// `None` for an untouched page.
    pub fn peek_cap(&self, addr: u64) -> Option<(CompressedCap, bool)> {
        let base = addr & !(CAP_GRANULE - 1);
        let page = &self.pages[*self.index.get(&(base >> PAGE_SHIFT))? as usize];
        let in_page = (base & (PAGE_SIZE - 1)) as usize;
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&page.data[in_page..in_page + 16]);
        Some((
            CompressedCap::from_bytes(bytes),
            page.tag(in_page / CAP_GRANULE as usize),
        ))
    }

    /// Clears the tag of the granule containing `addr` (a revocation
    /// tag-write). Returns whether a tag was actually cleared.
    pub fn clear_tag(&mut self, addr: u64) -> bool {
        let page_no = addr >> PAGE_SHIFT;
        let gi = ((addr & (PAGE_SIZE - 1)) / CAP_GRANULE) as usize;
        match self.index.get(&page_no) {
            Some(&slot) => {
                let page = &mut self.pages[slot as usize];
                if page.tag(gi) {
                    page.set_tag(gi, false);
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    // -- Convenience scalar accessors (little-endian) ----------------------

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// As [`read_bytes`](TaggedMemory::read_bytes).
    pub fn read_u8(&mut self, addr: u64) -> Result<u8, MemError> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// As [`read_bytes`](TaggedMemory::read_bytes).
    pub fn read_u16(&mut self, addr: u64) -> Result<u16, MemError> {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// As [`read_bytes`](TaggedMemory::read_bytes).
    pub fn read_u32(&mut self, addr: u64) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As [`read_bytes`](TaggedMemory::read_bytes).
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u8`.
    ///
    /// # Errors
    ///
    /// As [`write_bytes`](TaggedMemory::write_bytes).
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// As [`write_bytes`](TaggedMemory::write_bytes).
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// As [`write_bytes`](TaggedMemory::write_bytes).
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As [`write_bytes`](TaggedMemory::write_bytes).
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }
}

impl fmt::Debug for TaggedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TaggedMemory({} pages, {} KiB)",
            self.pages.len(),
            self.pages.len() * 4
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::Capability;

    #[test]
    fn scalar_roundtrips() {
        let mut m = TaggedMemory::new();
        m.write_u8(10, 0xab).unwrap();
        m.write_u16(12, 0x1234).unwrap();
        m.write_u32(16, 0xdead_beef).unwrap();
        m.write_u64(24, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u8(10).unwrap(), 0xab);
        assert_eq!(m.read_u16(12).unwrap(), 0x1234);
        assert_eq!(m.read_u32(16).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u64(24).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut m = TaggedMemory::new();
        let addr = PAGE_SIZE - 3;
        m.write_u64(addr, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn zero_initialised() {
        let mut m = TaggedMemory::new();
        assert_eq!(m.read_u64(0x9999).unwrap(), 0);
    }

    #[test]
    fn cap_roundtrip_preserves_tag() {
        let mut m = TaggedMemory::new();
        let c = Capability::root_rw().set_bounds_exact(0x100, 64).unwrap();
        m.store_cap(0x40, c.to_compressed(), true).unwrap();
        let (cc, tag) = m.load_cap(0x40).unwrap();
        assert!(tag);
        assert_eq!(Capability::from_compressed(cc, tag), c);
    }

    #[test]
    fn data_store_clears_overlapping_tag() {
        let mut m = TaggedMemory::new();
        let c = Capability::root_rw().set_bounds_exact(0x100, 64).unwrap();
        m.store_cap(0x40, c.to_compressed(), true).unwrap();
        // Overwrite one byte inside the granule.
        m.write_u8(0x47, 0xff).unwrap();
        let (_, tag) = m.load_cap(0x40).unwrap();
        assert!(!tag, "tag must be cleared by a plain-data overwrite");
        assert_eq!(m.stats().tags_cleared_by_data, 1);
    }

    #[test]
    fn data_store_adjacent_granule_keeps_tag() {
        let mut m = TaggedMemory::new();
        let c = Capability::root_rw().set_bounds_exact(0x100, 64).unwrap();
        m.store_cap(0x40, c.to_compressed(), true).unwrap();
        m.write_u64(0x50, 1).unwrap(); // next granule
        m.write_u64(0x38, 1).unwrap(); // previous granule
        let (_, tag) = m.load_cap(0x40).unwrap();
        assert!(tag);
    }

    #[test]
    fn straddling_data_store_clears_both_tags() {
        let mut m = TaggedMemory::new();
        let c = Capability::root_rw().set_bounds_exact(0x100, 64).unwrap();
        m.store_cap(0x40, c.to_compressed(), true).unwrap();
        m.store_cap(0x50, c.to_compressed(), true).unwrap();
        // 8-byte write straddling the 0x40/0x50 granule boundary.
        m.write_u64(0x4c, 0).unwrap();
        assert!(!m.load_cap(0x40).unwrap().1);
        assert!(!m.load_cap(0x50).unwrap().1);
    }

    #[test]
    fn unaligned_cap_access_rejected() {
        let mut m = TaggedMemory::new();
        assert_eq!(
            m.load_cap(0x41).unwrap_err(),
            MemError::UnalignedCapAccess { addr: 0x41 }
        );
        assert!(m.store_cap(0x48 + 4, CompressedCap::NULL, false).is_err());
    }

    #[test]
    fn cap_store_then_cap_load_via_bytes_loses_tag() {
        // Reading capability bytes as data is fine; re-storing them as data
        // yields an untagged image (no forgery).
        let mut m = TaggedMemory::new();
        let c = Capability::root_rw().set_bounds_exact(0x100, 64).unwrap();
        m.store_cap(0x40, c.to_compressed(), true).unwrap();
        let mut img = [0u8; 16];
        m.read_bytes(0x40, &mut img).unwrap();
        m.write_bytes(0x60, &img).unwrap();
        let (cc, tag) = m.load_cap(0x60).unwrap();
        assert!(!tag, "data writes can never set a tag");
        assert_eq!(cc, c.to_compressed(), "bit pattern still matches");
    }

    #[test]
    fn footprint_counts_pages() {
        let mut m = TaggedMemory::new();
        m.write_u8(0, 1).unwrap();
        m.write_u8(PAGE_SIZE * 10, 1).unwrap();
        m.write_u8(PAGE_SIZE * 10 + 5, 1).unwrap();
        assert_eq!(m.pages_touched(), 2);
        assert_eq!(m.footprint_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn revocation_sweep_clears_only_stale_capabilities() {
        let mut m = TaggedMemory::new();
        let freed = Capability::root_rw().set_bounds_exact(0x8000, 64).unwrap();
        let live = Capability::root_rw().set_bounds_exact(0x9000, 64).unwrap();
        // Three stored capabilities: two stale, one live.
        m.store_cap(0x100, freed.to_compressed(), true).unwrap();
        m.store_cap(0x200, freed.inc_address(8).to_compressed(), true)
            .unwrap();
        m.store_cap(0x300, live.to_compressed(), true).unwrap();
        let (revoked, scanned) = m.revoke_region(0x8000, 0x8040);
        assert_eq!(revoked, 2);
        assert_eq!(scanned, 3);
        assert!(!m.load_cap(0x100).unwrap().1, "stale tag cleared");
        assert!(!m.load_cap(0x200).unwrap().1);
        assert!(m.load_cap(0x300).unwrap().1, "live capability survives");
        // Idempotent: nothing left to revoke.
        assert_eq!(m.revoke_region(0x8000, 0x8040), (0, 1));
    }

    #[test]
    fn sweep_accessors_enumerate_and_clear() {
        let mut m = TaggedMemory::new();
        let c = Capability::root_rw().set_bounds_exact(0x8000, 64).unwrap();
        m.store_cap(0x40, c.to_compressed(), true).unwrap();
        m.store_cap(PAGE_SIZE * 3 + 0x20, c.to_compressed(), true)
            .unwrap();
        m.write_u8(PAGE_SIZE * 9, 1).unwrap(); // touched, untagged page
        assert_eq!(
            m.touched_pages_in(0, PAGE_SIZE * 10),
            vec![0, PAGE_SIZE * 3, PAGE_SIZE * 9]
        );
        assert_eq!(
            m.tagged_granules_in(0, PAGE_SIZE * 10),
            vec![0x40, PAGE_SIZE * 3 + 0x20]
        );
        assert_eq!(m.tagged_granules_in(0x50, PAGE_SIZE * 10).len(), 1);
        let (cc, tag) = m.peek_cap(0x44).unwrap();
        assert!(tag);
        assert_eq!(cc, c.to_compressed());
        assert!(m.peek_cap(PAGE_SIZE * 20).is_none());
        assert!(m.clear_tag(0x40));
        assert!(!m.clear_tag(0x40), "second clear is a no-op");
        assert_eq!(m.tagged_granules_in(0, PAGE_SIZE * 10).len(), 1);
    }

    #[test]
    fn address_wrap_rejected() {
        let mut m = TaggedMemory::new();
        assert!(m.write_u64(u64::MAX - 3, 0).is_err());
        let mut buf = [0u8; 8];
        assert!(m.read_bytes(u64::MAX - 3, &mut buf).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut m = TaggedMemory::new();
        m.write_u64(0, 1).unwrap();
        m.read_u32(0).unwrap();
        m.store_cap(16, CompressedCap::NULL, false).unwrap();
        m.load_cap(16).unwrap();
        let s = m.stats();
        assert_eq!(s.data_writes, 1);
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.data_reads, 1);
        assert_eq!(s.bytes_read, 4);
        assert_eq!(s.cap_writes, 1);
        assert_eq!(s.cap_reads, 1);
    }
}
